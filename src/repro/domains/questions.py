"""Templated gold SQL + NL paraphrases for any domain.

Plays the role the six expert annotators played for FootballDB, but
domain-agnostically: every :class:`QuestionKind` below instantiates over
a :class:`~repro.domains.spec.DomainSpec` and its generated data,
emitting engine ASTs (parseable and executable by construction) plus
two or three English surface paraphrases per question.

The emitted SQL deliberately stays inside the morph rewriter's exact
contract (see :mod:`repro.domains.morph`): every column reference is
alias-qualified, projections are explicit, and set-operation ``ORDER
BY`` tails are never produced — so a domain's gold queries remain
execution-equivalent under arbitrary morph chains.  ``LIMIT`` is only
emitted under a total order (the unique display name breaks ties),
keeping differential engine-vs-sqlite comparisons deterministic.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sqlengine import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
    format_query,
)

from .spec import DomainSpec, EntitySpec, FieldSpec, Relationship

Row = Tuple[object, ...]


def question_id(question: str) -> str:
    """Stable identifier for a question text (blake2s, 8 bytes)."""
    return hashlib.blake2s(question.encode("utf-8"), digest_size=8).hexdigest()


@dataclass
class DomainExample:
    """One labeled question: NL text, paraphrases, gold SQL per version."""

    qid: str
    question: str
    paraphrases: Tuple[str, ...]
    kind: str
    slots: Tuple[Tuple[str, object], ...]
    gold: Dict[str, str]  # version -> SQL


# -- tiny AST DSL ---------------------------------------------------------------


def _col(alias: str, column: str) -> ColumnRef:
    return ColumnRef(column, alias)


def _eq(left: Expression, right: Expression) -> BinaryOp:
    return BinaryOp("=", left, right)


def _name_filter(alias: str, column: str, value: str) -> LikeOp:
    """Name filters use the annotators' ILIKE operator, but *anchored*.

    The football gold queries match ``'%value%'``; generated display
    names are drawn from a small syllable pool where one name can be a
    substring of another (``Orley`` ⊂ ``Yorley``), so an unanchored
    pattern would label the question with rows of unrelated entities.
    A wildcard-free ILIKE is an exact case-insensitive match on both
    the engine and sqlite's default ``LIKE``.
    """
    return LikeOp(_col(alias, column), Literal(value), case_insensitive=True)


def _count_star() -> FunctionCall:
    return FunctionCall("count", (Star(),))


def _agg(name: str, expr: Expression) -> FunctionCall:
    return FunctionCall(name, (expr,))


def _select(
    projections: Sequence[Expression],
    from_table: Tuple[str, str],
    joins: Optional[List[Join]] = None,
    where: Optional[Expression] = None,
    group_by: Optional[List[Expression]] = None,
    having: Optional[Expression] = None,
    order_by: Optional[List[OrderItem]] = None,
    limit: Optional[int] = None,
    distinct: bool = False,
) -> SelectQuery:
    return SelectQuery(
        projections=[SelectItem(p) for p in projections],
        from_table=TableRef(*from_table),
        joins=joins or [],
        where=where,
        group_by=group_by or [],
        having=having,
        order_by=order_by or [],
        limit=limit,
        distinct=distinct,
    )


def _join(table: str, alias: str, condition: Expression) -> Join:
    return Join(JoinKind.INNER, TableRef(table, alias), condition)


def _rel_join(spec: DomainSpec, rel: Relationship) -> Tuple[Tuple[str, str], Join]:
    """``FROM child AS c JOIN parent AS p ON c.fk = p.pk``."""
    parent_pk = spec.entity(rel.parent).pk_field.name
    return (
        (rel.child, "c"),
        _join(rel.parent, "p", _eq(_col("c", rel.field), _col("p", parent_pk))),
    )


# -- question kinds ---------------------------------------------------------------


@dataclass(frozen=True)
class _Instance:
    kind: str
    templates: Tuple[str, ...]
    slots: Dict[str, object]
    query: SelectQuery


def _numeric_attrs(entity: EntitySpec) -> List[FieldSpec]:
    return [
        f
        for f in entity.attr_fields
        if f.sql_type in ("int", "real") and f.generator[0] != "serial"
    ]


def _categorical_attrs(entity: EntitySpec) -> List[FieldSpec]:
    return [f for f in entity.attr_fields if f.generator and f.generator[0] == "choice"]


class _KindBuilder:
    """Instantiates every question kind over one domain's spec + data."""

    def __init__(
        self,
        spec: DomainSpec,
        tables: Dict[str, List[Row]],
        rng: random.Random,
        per_kind: int,
    ) -> None:
        self.spec = spec
        self.tables = tables
        self.rng = rng
        self.per_kind = per_kind

    # -- helpers ------------------------------------------------------------
    def _column_values(self, entity: EntitySpec, f: FieldSpec) -> List[object]:
        position = [x.name for x in entity.fields].index(f.name)
        return [row[position] for row in self.tables[entity.name]]

    def _sample_names(self, entity: EntitySpec, count: int) -> List[str]:
        values = [
            v for v in self._column_values(entity, entity.name_attr) if v is not None
        ]
        count = min(count, len(values))
        return self.rng.sample(values, count)

    def _cap(self, instances: List[_Instance]) -> List[_Instance]:
        if len(instances) <= self.per_kind:
            return instances
        return self.rng.sample(instances, self.per_kind)

    # -- kinds --------------------------------------------------------------
    def count_all(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            out.append(
                _Instance(
                    "count_all",
                    (
                        "How many {plural} are there?",
                        "What is the total number of {plural}?",
                        "Count all {plural}.",
                    ),
                    {"plural": entity.plural_phrase},
                    _select([_count_star()], (entity.name, "t")),
                )
            )
        return self._cap(out)

    def lookup_attr(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            attrs = list(entity.attr_fields)
            if not attrs:
                continue
            for value in self._sample_names(entity, 3):
                f = self.rng.choice(attrs)
                out.append(
                    _Instance(
                        "lookup_attr",
                        (
                            "What is the {attr} of {value}?",
                            "Tell me the {attr} of {value}.",
                            "{value} — what is its {attr}?",
                        ),
                        {"attr": f.phrase, "value": value},
                        _select(
                            [_col("t", f.name)],
                            (entity.name, "t"),
                            where=_name_filter("t", entity.name_attr.name, value),
                        ),
                    )
                )
        return self._cap(out)

    def filter_count(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            for f in _categorical_attrs(entity):
                choices = f.generator[1]
                value = self.rng.choice(choices)
                out.append(
                    _Instance(
                        "filter_count",
                        (
                            "How many {plural} have {attr} {value}?",
                            "Number of {plural} whose {attr} is {value}?",
                        ),
                        {"plural": entity.plural_phrase, "attr": f.phrase, "value": value},
                        _select(
                            [_count_star()],
                            (entity.name, "t"),
                            where=_eq(_col("t", f.name), Literal(value)),
                        ),
                    )
                )
            for f in entity.attr_fields:
                if f.sql_type != "bool":
                    continue
                out.append(
                    _Instance(
                        "filter_count",
                        (
                            "How many {plural} are {attr}?",
                            "Count the {plural} that are {attr}.",
                        ),
                        {"plural": entity.plural_phrase, "attr": f.phrase},
                        _select(
                            [_count_star()],
                            (entity.name, "t"),
                            # booleans compare through their text form —
                            # the football gold queries' house style
                            where=_eq(_col("t", f.name), Literal("True")),
                        ),
                    )
                )
        return self._cap(out)

    def extreme_entity(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            for f in _numeric_attrs(entity):
                descending = self.rng.random() < 0.5
                word = "highest" if descending else "lowest"
                out.append(
                    _Instance(
                        "extreme_entity",
                        (
                            "Which {singular} has the {word} {attr}?",
                            "Name the {singular} with the {word} {attr}.",
                        ),
                        {
                            "singular": entity.singular_phrase,
                            "attr": f.phrase,
                            "word": word,
                        },
                        _select(
                            [_col("t", entity.name_attr.name)],
                            (entity.name, "t"),
                            order_by=[
                                OrderItem(_col("t", f.name), descending=descending),
                                # unique name => total order => LIMIT is
                                # deterministic across engines
                                OrderItem(_col("t", entity.name_attr.name)),
                            ],
                            limit=1,
                        ),
                    )
                )
        return self._cap(out)

    def avg_attr(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            for f in _numeric_attrs(entity):
                out.append(
                    _Instance(
                        "avg_attr",
                        (
                            "What is the average {attr} of {plural}?",
                            "Average {attr} across all {plural}?",
                        ),
                        {"attr": f.phrase, "plural": entity.plural_phrase},
                        _select(
                            [_agg("avg", _col("t", f.name))],
                            (entity.name, "t"),
                        ),
                    )
                )
        return self._cap(out)

    def above_average(self) -> List[_Instance]:
        out = []
        for entity in self.spec.entities:
            for f in _numeric_attrs(entity):
                inner = _select(
                    [_agg("avg", _col("s", f.name))], (entity.name, "s")
                )
                out.append(
                    _Instance(
                        "above_average",
                        (
                            "Which {plural} have a {attr} above the average?",
                            "List the {plural} whose {attr} is above average.",
                        ),
                        {"plural": entity.plural_phrase, "attr": f.phrase},
                        _select(
                            [_col("t", entity.name_attr.name)],
                            (entity.name, "t"),
                            where=BinaryOp(
                                ">", _col("t", f.name), ScalarSubquery(inner)
                            ),
                        ),
                    )
                )
        return self._cap(out)

    def children_of(self) -> List[_Instance]:
        out = []
        for rel in self.spec.relationships():
            child = self.spec.entity(rel.child)
            parent = self.spec.entity(rel.parent)
            for value in self._sample_names(parent, 2):
                from_table, joined = _rel_join(self.spec, rel)
                out.append(
                    _Instance(
                        "children_of",
                        (
                            "Which {children} belong to {value}?",
                            "List the {children} of {value}.",
                        ),
                        {"children": child.plural_phrase, "value": value},
                        _select(
                            [_col("c", child.name_attr.name)],
                            from_table,
                            joins=[joined],
                            where=_name_filter("p", parent.name_attr.name, value),
                        ),
                    )
                )
        return self._cap(out)

    def group_count(self) -> List[_Instance]:
        out = []
        for rel in self.spec.relationships():
            child = self.spec.entity(rel.child)
            parent = self.spec.entity(rel.parent)
            from_table, joined = _rel_join(self.spec, rel)
            out.append(
                _Instance(
                    "group_count",
                    (
                        "How many {children} does each {parent} have?",
                        "Count the {children} per {parent}.",
                    ),
                    {
                        "children": child.plural_phrase,
                        "parent": parent.singular_phrase,
                    },
                    _select(
                        [_col("p", parent.name_attr.name), _count_star()],
                        from_table,
                        joins=[joined],
                        group_by=[_col("p", parent.name_attr.name)],
                    ),
                )
            )
        return self._cap(out)

    def top_parent(self) -> List[_Instance]:
        out = []
        for rel in self.spec.relationships():
            child = self.spec.entity(rel.child)
            parent = self.spec.entity(rel.parent)
            from_table, joined = _rel_join(self.spec, rel)
            out.append(
                _Instance(
                    "top_parent",
                    (
                        "Which {parent} has the most {children}?",
                        "Name the {parent} with the largest number of {children}.",
                    ),
                    {
                        "parent": parent.singular_phrase,
                        "children": child.plural_phrase,
                    },
                    _select(
                        [_col("p", parent.name_attr.name)],
                        from_table,
                        joins=[joined],
                        group_by=[_col("p", parent.name_attr.name)],
                        order_by=[
                            OrderItem(_count_star(), descending=True),
                            OrderItem(_col("p", parent.name_attr.name)),
                        ],
                        limit=1,
                    ),
                )
            )
        return self._cap(out)

    def having_threshold(self) -> List[_Instance]:
        out = []
        for rel in self.spec.relationships():
            child = self.spec.entity(rel.child)
            parent = self.spec.entity(rel.parent)
            # pick the mean children-per-parent as the cut so the result
            # is neither empty nor everything
            threshold = max(1, round(child.rows / max(1, parent.rows)))
            from_table, joined = _rel_join(self.spec, rel)
            out.append(
                _Instance(
                    "having_threshold",
                    (
                        "Which {parents} have more than {n} {children}?",
                        "List the {parents} with over {n} {children}.",
                    ),
                    {
                        "parents": parent.plural_phrase,
                        "children": child.plural_phrase,
                        "n": threshold,
                    },
                    _select(
                        [_col("p", parent.name_attr.name)],
                        from_table,
                        joins=[joined],
                        group_by=[_col("p", parent.name_attr.name)],
                        having=BinaryOp(">", _count_star(), Literal(threshold)),
                    ),
                )
            )
        return self._cap(out)

    def sum_by_parent(self) -> List[_Instance]:
        out = []
        for rel in self.spec.relationships():
            child = self.spec.entity(rel.child)
            parent = self.spec.entity(rel.parent)
            numeric = [f for f in _numeric_attrs(child) if f.sql_type == "int"]
            if not numeric:
                continue
            f = self.rng.choice(numeric)
            from_table, joined = _rel_join(self.spec, rel)
            out.append(
                _Instance(
                    "sum_by_parent",
                    (
                        "What is the total {attr} of {children} per {parent}?",
                        "Sum the {attr} of the {children} for each {parent}.",
                    ),
                    {
                        "attr": f.phrase,
                        "children": child.plural_phrase,
                        "parent": parent.singular_phrase,
                    },
                    _select(
                        [_col("p", parent.name_attr.name), _agg("sum", _col("c", f.name))],
                        from_table,
                        joins=[joined],
                        group_by=[_col("p", parent.name_attr.name)],
                    ),
                )
            )
        return self._cap(out)


KIND_NAMES: Tuple[str, ...] = (
    "count_all",
    "lookup_attr",
    "filter_count",
    "extreme_entity",
    "avg_attr",
    "above_average",
    "children_of",
    "group_count",
    "top_parent",
    "having_threshold",
    "sum_by_parent",
)


def generate_examples(
    spec: DomainSpec,
    tables: Dict[str, List[Row]],
    seed: int,
    version: str = "base",
    per_kind: int = 8,
) -> List[DomainExample]:
    """The domain's labeled question pool, deterministic in ``(spec, seed)``.

    Each instantiated question carries all surface paraphrases; the
    first rendered paraphrase is the canonical question text.  Questions
    deduplicate on their canonical text (two sampled values can
    collide), keeping qids unique.
    """
    rng = random.Random(f"questions|{spec.name}|{seed}")
    builder = _KindBuilder(spec, tables, rng, per_kind)
    examples: List[DomainExample] = []
    seen: set = set()
    for kind in KIND_NAMES:
        for instance in getattr(builder, kind)():
            rendered = tuple(
                template.format(**instance.slots) for template in instance.templates
            )
            if rendered[0] in seen:
                continue
            seen.add(rendered[0])
            examples.append(
                DomainExample(
                    qid=question_id(rendered[0]),
                    question=rendered[0],
                    paraphrases=rendered,
                    kind=instance.kind,
                    slots=tuple(sorted(instance.slots.items())),
                    gold={version: format_query(instance.query)},
                )
            )
    return examples
