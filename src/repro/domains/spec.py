"""Declarative domain specifications.

A :class:`DomainSpec` declares one application domain as entities
(tables-to-be) and relationships (foreign-key fields): the seeded,
domain-agnostic input from which :mod:`repro.domains.generator` derives
a catalog-validated schema plus referentially consistent data, and
:mod:`repro.domains.questions` derives templated gold SQL with NL
paraphrases.  The paper measures Text-to-SQL robustness on one football
database; specs make *domains themselves* a grid axis.

Conventions (validated in :meth:`DomainSpec.validate`):

* every entity has exactly one ``pk`` field (an ``int`` surrogate key,
  first by convention) and exactly one ``name`` field (the ``text``
  column NL questions anchor on);
* relationships are ``fk`` fields whose ``ref`` names another entity
  declared *earlier* — the entity list is therefore already in
  FK-topological order and cycle-free by construction;
* all identifiers are snake_case and valid for the engine catalog
  (the catalog re-validates on schema construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

FIELD_ROLES = ("pk", "name", "attr", "fk")
FIELD_TYPES = ("int", "real", "text", "bool")

#: value-generator kinds understood by :mod:`repro.domains.generator`
GENERATOR_KINDS = ("int", "real", "choice", "bool", "year", "serial")


class SpecError(ValueError):
    """Raised when a domain specification is internally inconsistent."""


@dataclass(frozen=True)
class FieldSpec:
    """One column of one entity.

    ``generator`` describes how row values are drawn (ignored for
    ``pk``/``name``/``fk`` roles, whose values are structural):

    ==================  ====================================================
    ``("int", lo, hi)``    uniform integer in ``[lo, hi]``
    ``("real", lo, hi)``   uniform real in ``[lo, hi]``, rounded to 2 places
    ``("choice", (...))``  uniform pick from a category tuple
    ``("bool", p)``        ``True`` with probability ``p``
    ``("year", lo, hi)``   alias of ``int`` (reads better in specs)
    ``("serial",)``        1-based running integer (quasi-identifier)
    ==================  ====================================================
    """

    name: str
    sql_type: str = "int"
    role: str = "attr"
    ref: Optional[str] = None  # fk only: the referenced entity
    generator: Tuple = ()
    nullable: float = 0.0  # fraction of NULL values (attr fields only)
    display: Optional[str] = None  # NL phrase; defaults to name with spaces

    @property
    def phrase(self) -> str:
        return self.display or self.name.replace("_", " ")


def pk(name: str) -> FieldSpec:
    return FieldSpec(name, "int", role="pk")


def name_field(name: str = "name") -> FieldSpec:
    return FieldSpec(name, "text", role="name")


def fk(name: str, ref: str) -> FieldSpec:
    return FieldSpec(name, "int", role="fk", ref=ref)


def attr(
    name: str,
    sql_type: str,
    generator: Tuple,
    nullable: float = 0.0,
    display: Optional[str] = None,
) -> FieldSpec:
    return FieldSpec(name, sql_type, "attr", None, generator, nullable, display)


@dataclass(frozen=True)
class EntitySpec:
    """One entity (one base table) with a target row count."""

    name: str
    fields: Tuple[FieldSpec, ...]
    rows: int
    plural: Optional[str] = None
    display: Optional[str] = None
    name_prefix: str = ""  # prepended to generated display names

    @property
    def singular_phrase(self) -> str:
        return self.display or self.name.replace("_", " ")

    @property
    def plural_phrase(self) -> str:
        return self.plural or self.singular_phrase + "s"

    @property
    def pk_field(self) -> FieldSpec:
        return next(f for f in self.fields if f.role == "pk")

    @property
    def name_attr(self) -> FieldSpec:
        return next(f for f in self.fields if f.role == "name")

    @property
    def fk_fields(self) -> Tuple[FieldSpec, ...]:
        return tuple(f for f in self.fields if f.role == "fk")

    @property
    def attr_fields(self) -> Tuple[FieldSpec, ...]:
        return tuple(f for f in self.fields if f.role == "attr")


@dataclass(frozen=True)
class Relationship:
    """One derived FK edge ``child.field -> parent.pk``."""

    child: str
    field: str
    parent: str

    def describe(self) -> str:
        return f"{self.child}.{self.field} -> {self.parent}"


@dataclass(frozen=True)
class DomainSpec:
    """A whole domain: named entities plus the relationships they declare."""

    name: str
    title: str
    entities: Tuple[EntitySpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    # -- lookups ------------------------------------------------------------
    def entity(self, name: str) -> EntitySpec:
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise SpecError(f"domain {self.name!r} has no entity {name!r}")

    @property
    def entity_names(self) -> List[str]:
        return [entity.name for entity in self.entities]

    def relationships(self) -> List[Relationship]:
        return [
            Relationship(entity.name, f.name, f.ref)
            for entity in self.entities
            for f in entity.fk_fields
        ]

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid domain name {self.name!r}")
        if not self.entities:
            raise SpecError(f"domain {self.name!r} declares no entities")
        seen: Dict[str, int] = {}
        for position, entity in enumerate(self.entities):
            if not entity.name.isidentifier():
                raise SpecError(f"invalid entity name {entity.name!r}")
            if entity.name in seen:
                raise SpecError(f"duplicate entity {entity.name!r}")
            seen[entity.name] = position
            if entity.rows < 1:
                raise SpecError(f"entity {entity.name!r} must have rows >= 1")
            self._validate_entity(entity, seen, position)

    def _validate_entity(
        self, entity: EntitySpec, seen: Dict[str, int], position: int
    ) -> None:
        roles = [f.role for f in entity.fields]
        if roles.count("pk") != 1:
            raise SpecError(f"entity {entity.name!r} needs exactly one pk field")
        if roles.count("name") != 1:
            raise SpecError(f"entity {entity.name!r} needs exactly one name field")
        field_names = set()
        for f in entity.fields:
            if not f.name.isidentifier():
                raise SpecError(f"invalid field name {entity.name}.{f.name}")
            if f.name.lower() in field_names:
                raise SpecError(f"duplicate field {entity.name}.{f.name}")
            field_names.add(f.name.lower())
            if f.role not in FIELD_ROLES:
                raise SpecError(f"unknown role {f.role!r} on {entity.name}.{f.name}")
            if f.sql_type not in FIELD_TYPES:
                raise SpecError(
                    f"unknown type {f.sql_type!r} on {entity.name}.{f.name}"
                )
            if f.role == "fk":
                if f.ref is None:
                    raise SpecError(f"fk {entity.name}.{f.name} missing ref")
                if f.ref not in seen or seen[f.ref] >= position:
                    raise SpecError(
                        f"fk {entity.name}.{f.name} references {f.ref!r}, which "
                        "is not declared earlier (entities must be listed "
                        "parents-first)"
                    )
            if f.role == "attr":
                if not f.generator or f.generator[0] not in GENERATOR_KINDS:
                    raise SpecError(
                        f"attr {entity.name}.{f.name} needs a generator from "
                        f"{GENERATOR_KINDS}"
                    )
                if not 0.0 <= f.nullable < 1.0:
                    raise SpecError(
                        f"attr {entity.name}.{f.name} nullable must be in [0, 1)"
                    )

    def describe(self) -> str:
        lines = [f"domain {self.name} — {self.title}"]
        for entity in self.entities:
            columns = ", ".join(f.name for f in entity.fields)
            lines.append(f"  {entity.name}({columns}) x{entity.rows}")
        for relationship in self.relationships():
            lines.append(f"  FK {relationship.describe()}")
        return "\n".join(lines)
