"""A loaded domain: databases per data-model version plus its workload.

:class:`DomainInstance` is the generic object the evaluation stack
passes around — the football-specific :class:`repro.footballdb.FootballDB`
subclasses it, so every consumer (harness, grid sweeps, service
routing, morph installation) works identically whether the domain was
hand-written for the paper or generated from a
:class:`~repro.domains.spec.DomainSpec`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sqlengine import Database

#: (version, variant_seed) -> a database with perturbed non-identity data
VariantLoader = Callable[[str, int], Database]


class DomainInstance:
    """Databases keyed by data-model version, plus the domain workload.

    ``examples`` is the domain's labeled question pool (empty for
    domains that build their benchmark elsewhere, like football);
    ``variant_loader`` produces test-suite perturbations — same schema
    and entity identities, re-drawn facts; ``universe`` carries an
    optional domain-specific world object (football's ``Universe``).
    """

    def __init__(
        self,
        name: str,
        databases: Dict[str, Database],
        examples: Sequence[Any] = (),
        universe: Any = None,
        variant_loader: Optional[VariantLoader] = None,
        spec: Any = None,
    ) -> None:
        self.name = name
        self.databases = dict(databases)
        self.examples = list(examples)
        self.universe = universe
        self.variant_loader = variant_loader
        self.spec = spec

    # -- version registry ---------------------------------------------------
    def database(self, version: str) -> Database:
        return self.databases[version]

    def __getitem__(self, version: str) -> Database:
        return self.databases[version]

    @property
    def versions(self) -> List[str]:
        """Every registered data-model version, built-ins first."""
        return list(self.databases)

    @property
    def base_version(self) -> str:
        return next(iter(self.databases))

    def register(self, version: str, database: Database) -> str:
        """Add a derived data-model version (e.g. a schema morph)."""
        if version in self.databases:
            raise ValueError(f"data model version {version!r} already registered")
        self.databases[version] = database
        return version

    # -- workload -------------------------------------------------------------
    def gold_queries(self, version: str) -> List[str]:
        """Distinct gold SQL of this domain's examples for one version."""
        return sorted(
            {
                example.gold[version]
                for example in self.examples
                if version in example.gold
            }
        )

    def variant_database(self, version: str, variant_seed: int) -> Database:
        """A perturbed copy for test-suite evaluation (if supported)."""
        if self.variant_loader is None:
            raise ValueError(
                f"domain {self.name!r} does not provide a variant loader"
            )
        return self.variant_loader(version, variant_seed)

    def set_engine_mode(self, engine_mode: str) -> None:
        """Pin every registered database to one execution backend."""
        from repro.sqlengine import ENGINE_MODES

        if engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {engine_mode!r}"
            )
        for database in self.databases.values():
            database.engine_mode = engine_mode

    def describe(self) -> str:
        parts = [
            f"domain {self.name}: versions={', '.join(self.versions)}",
            f"examples={len(self.examples)}",
        ]
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DomainInstance({self.name!r}, versions={self.versions})"
