"""Synthetic user-query logs for generated domains.

The paper's evaluation starts from ~5.9K live user interactions;
:func:`synthesize_logs` produces the same artifact for any domain:
a seeded stream of :class:`~repro.workload.logs.LogRecord` entries
drawn from the domain's question pool — clean paraphrases, misspelled
variants, and unanswerable/unrelated noise in roughly the proportions
the paper reports for the World Cup deployment (Section 4) — so Table-1
style statistics and log-driven benchmark construction work on every
domain, not just football.

The heavy workload machinery is imported lazily: ``repro.workload``
pulls in ``repro.footballdb``, which itself builds on
:mod:`repro.domains.instance`, and a module-level import here would
close that cycle.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.logs import LogRecord

    from .questions import DomainExample

#: category mix of the simulated deployment (Section 4 proportions,
#: coarsened): clean, misspelled, unanswerable, unrelated
_CATEGORY_WEIGHTS = (0.72, 0.12, 0.09, 0.07)

_UNRELATED = (
    "What is the weather tomorrow?",
    "Tell me a joke.",
    "How do I reset my password?",
    "Who are you?",
)


def _misspell(question: str, rng: random.Random) -> str:
    """Drop or swap one character in a word of 4+ letters."""
    words = question.split(" ")
    candidates = [i for i, word in enumerate(words) if len(word) >= 4]
    if not candidates:
        return question
    index = rng.choice(candidates)
    word = words[index]
    position = rng.randrange(1, len(word) - 1)
    if rng.random() < 0.5:
        word = word[:position] + word[position + 1 :]
    else:
        word = (
            word[: position - 1]
            + word[position]
            + word[position - 1]
            + word[position + 1 :]
        )
    words[index] = word
    return " ".join(words)


def synthesize_logs(
    domain_name: str,
    examples: Sequence["DomainExample"],
    size: int,
    seed: int = 0,
) -> List["LogRecord"]:
    """``size`` seeded log records over a domain's question pool.

    Clean and misspelled records carry a generic per-domain
    :class:`~repro.workload.intents.Intent` (kind ``"<domain>:<kind>"``)
    so downstream filters can distinguish answerable traffic exactly as
    they do for the football log; noise records carry ``intent=None``.
    Feedback and correctness fields follow the paper's observed rates
    (thumbs are rare; most interactions go unlabeled).
    """
    from repro.workload.intents import Intent
    from repro.workload.logs import Feedback, LogRecord, QuestionCategory

    if not examples:
        raise ValueError(f"domain {domain_name!r} has no examples to sample from")
    rng = random.Random(f"logs|{domain_name}|{seed}")
    pool = list(examples)
    categories = (
        QuestionCategory.CLEAN,
        QuestionCategory.MISSPELLED,
        QuestionCategory.UNANSWERABLE,
        QuestionCategory.UNRELATED,
    )
    records: List["LogRecord"] = []
    for log_id in range(1, size + 1):
        category = rng.choices(categories, weights=_CATEGORY_WEIGHTS)[0]
        example = rng.choice(pool)
        intent = None
        predicted_sql = None
        correct = None
        if category is QuestionCategory.CLEAN:
            question = rng.choice(example.paraphrases)
        elif category is QuestionCategory.MISSPELLED:
            question = _misspell(rng.choice(example.paraphrases), rng)
        elif category is QuestionCategory.UNANSWERABLE:
            question = f"Why is {example.question.rstrip('?.').lower()} like that?"
        else:
            question = rng.choice(_UNRELATED)
        answerable = category in (
            QuestionCategory.CLEAN,
            QuestionCategory.MISSPELLED,
        )
        sql_generated = answerable and rng.random() < 0.93
        if answerable:
            intent = Intent(
                kind=f"{domain_name}:{example.kind}", slots=example.slots
            )
        if sql_generated:
            predicted_sql = next(iter(example.gold.values()))
            correct = rng.random() < 0.8
        feedback = Feedback.NONE
        roll = rng.random()
        if sql_generated and roll < 0.06:
            feedback = Feedback.THUMBS_UP if correct else Feedback.THUMBS_DOWN
        records.append(
            LogRecord(
                log_id=log_id,
                question=question,
                category=category,
                intent=intent,
                sql_generated=sql_generated,
                predicted_sql=predicted_sql,
                prediction_correct=correct,
                feedback=feedback,
                corrected_sql=None,
            )
        )
    return records
