"""DomainSpec → catalog-validated schema + referentially consistent data.

The generator is the domain-agnostic analogue of the FootballDB
loaders: :func:`build_schema` renders a spec through the engine's
catalog API (which rejects invalid identifiers and dangling FK
columns), :func:`generate_tables` draws every entity's rows from a
seeded RNG with FK values sampled from the already-generated parent
keys (FK-closed by construction), and :func:`load_database` materializes
both into a :class:`~repro.sqlengine.Database` with foreign-key
enforcement **on** — a violated reference fails loudly at insert time.

Variant generation (the test-suite analogue of
:func:`repro.evaluation.test_suite.perturb_events`): ``variant_seed``
re-draws attribute values and FK assignments while keeping every
primary key and display name fixed, so entity *identities* are stable
across variants but the facts about them change — exactly the
perturbation that exposes coincidental EX matches.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sqlengine import Database, Schema, make_column

from . import naming
from .spec import DomainSpec, FieldSpec

Row = Tuple[object, ...]


def build_schema(spec: DomainSpec, version: str = "base") -> Schema:
    """Render ``spec`` as an engine schema (catalog-validated)."""
    schema = Schema(spec.name, version=version)
    for entity in spec.entities:
        schema.create_table(
            entity.name,
            [
                make_column(
                    f.name,
                    f.sql_type,
                    primary_key=(f.role == "pk"),
                )
                for f in entity.fields
            ],
        )
    for relationship in spec.relationships():
        parent_pk = spec.entity(relationship.parent).pk_field.name
        schema.add_foreign_key(
            relationship.child, relationship.field, relationship.parent, parent_pk
        )
    return schema


def _draw_value(f: FieldSpec, rng: random.Random, serial: int) -> object:
    kind, *args = f.generator
    if kind in ("int", "year"):
        lo, hi = args
        return rng.randint(lo, hi)
    if kind == "real":
        lo, hi = args
        return round(rng.uniform(lo, hi), 2)
    if kind == "choice":
        return rng.choice(args[0])
    if kind == "bool":
        return rng.random() < args[0]
    if kind == "serial":
        return serial
    raise AssertionError(f"unreachable generator kind {kind!r}")  # pragma: no cover


def generate_tables(
    spec: DomainSpec, seed: int, variant_seed: Optional[int] = None
) -> Dict[str, List[Row]]:
    """Entity name → rows, deterministic in ``(spec, seed, variant_seed)``.

    Rows are drawn per entity from ``random.Random(f"{domain}|{seed}|{entity}")``
    so adding an entity to a spec never reshuffles the data of the
    others.  With ``variant_seed`` set, primary keys and display names
    are reproduced from ``seed`` while attribute values and FK
    assignments are re-drawn from the variant stream.
    """
    tables: Dict[str, List[Row]] = {}
    parent_keys: Dict[str, List[int]] = {}
    for entity in spec.entities:
        base_rng = random.Random(f"domain|{spec.name}|{seed}|{entity.name}")
        variant_rng = (
            random.Random(f"domain|{spec.name}|{seed}|{variant_seed}|{entity.name}")
            if variant_seed is not None
            else None
        )
        names = naming.unique_display_names(
            base_rng, entity.rows, prefix=entity.name_prefix
        )
        fact_rng = variant_rng if variant_rng is not None else base_rng
        rows: List[Row] = []
        for index in range(entity.rows):
            row: List[object] = []
            for f in entity.fields:
                if f.role == "pk":
                    row.append(index + 1)
                elif f.role == "name":
                    row.append(names[index])
                elif f.role == "fk":
                    row.append(fact_rng.choice(parent_keys[f.ref]))
                else:
                    if f.nullable and fact_rng.random() < f.nullable:
                        row.append(None)
                    else:
                        row.append(_draw_value(f, fact_rng, index + 1))
            rows.append(tuple(row))
        tables[entity.name] = rows
        parent_keys[entity.name] = [index + 1 for index in range(entity.rows)]
    return tables


def load_database(
    spec: DomainSpec,
    seed: int,
    version: str = "base",
    variant_seed: Optional[int] = None,
    engine_mode: str = "auto",
    tables: Optional[Dict[str, List[Row]]] = None,
) -> Database:
    """Materialize ``spec`` into a fresh engine database.

    Entities are declared parents-first (a spec invariant), so inserting
    in declaration order satisfies the engine's FK enforcement.  Pass
    ``tables`` (a :func:`generate_tables` result for the same seed) to
    reuse already-drawn rows instead of generating them a second time.
    """
    database = Database(build_schema(spec, version=version), engine_mode=engine_mode)
    if tables is None:
        tables = generate_tables(spec, seed, variant_seed=variant_seed)
    for entity_name, rows in tables.items():
        database.insert_many(entity_name, rows)
    return database


def entity_row_counts(spec: DomainSpec) -> Dict[str, int]:
    """Declared row targets (handy for stats and docs)."""
    return {entity.name: entity.rows for entity in spec.entities}


def growable_entities(spec: DomainSpec) -> List[str]:
    """Entities safe to grow without breaking FK closure: the ones no
    relationship references as a parent (leaf/fact entities).  Falls
    back to every entity when the spec has no relationships."""
    parents = {relationship.parent for relationship in spec.relationships()}
    leaves = [e.name for e in spec.entities if e.name not in parents]
    return leaves or [e.name for e in spec.entities]


def generate_growth_rows(
    spec: DomainSpec,
    seed: int,
    entity_name: str,
    start_pk: int,
    count: int,
) -> List[Row]:
    """``count`` new FK-closed rows for one entity, PKs from ``start_pk``.

    The ingestion replay driver's row source: deterministic in
    ``(spec, seed, entity, start_pk, count)``, with FK values drawn
    from the entity's *initial* parent key ranges (``1..parent.rows``)
    so growth rows always reference rows that exist — inserting them
    into a live database with FK enforcement on never rolls back,
    which keeps every insert exactly one version bump (the whole-batch
    epoch arithmetic in :mod:`repro.evaluation.ingestion` relies on
    this).  Display names get a ``"G<pk>"`` suffix stream disjoint
    from :mod:`repro.domains.naming`'s base names, so name collisions
    cannot occur.
    """
    entity = spec.entity(entity_name)
    rng = random.Random(f"growth|{spec.name}|{seed}|{entity_name}|{start_pk}")
    parent_sizes = {e.name: e.rows for e in spec.entities}
    rows: List[Row] = []
    for offset in range(count):
        serial = start_pk + offset
        row: List[object] = []
        for f in entity.fields:
            if f.role == "pk":
                row.append(serial)
            elif f.role == "name":
                prefix = entity.name_prefix or entity.name.title()
                row.append(f"{prefix} G{serial}")
            elif f.role == "fk":
                row.append(rng.randint(1, parent_sizes[f.ref]))
            elif f.nullable and rng.random() < f.nullable:
                row.append(None)
            else:
                row.append(_draw_value(f, rng, serial))
        rows.append(tuple(row))
    return rows
