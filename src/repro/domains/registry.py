"""The domain registry: one name → loader table for every scenario.

Domains register a :class:`DomainRecord` whose ``loader`` materializes
a :class:`~repro.domains.instance.DomainInstance` from a seed.  The
built-in generated domains (hospital, retail, flights) register at
import time; ``football`` registers through the *same* API with a lazy
loader so the registry never imports the heavyweight FootballDB stack
until it is actually asked for (which also keeps the package dependency
graph acyclic: ``repro.footballdb`` builds on
:mod:`repro.domains.instance`).

Consumers::

    from repro.domains import available_domains, load_domain

    instance = load_domain("hospital", seed=2022)
    instance["base"].execute(instance.gold_queries("base")[0])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import builtins as _builtins
from .generator import generate_tables, load_database
from .instance import DomainInstance
from .questions import generate_examples
from .spec import DomainSpec

DEFAULT_SEED = 2022

Loader = Callable[[int], DomainInstance]


@dataclass(frozen=True)
class DomainRecord:
    """One registered domain."""

    name: str
    loader: Loader
    description: str = ""
    generated: bool = True  # spec-generated vs hand-written (football)


_REGISTRY: Dict[str, DomainRecord] = {}


class UnknownDomainError(KeyError):
    """Raised for lookups of a name no domain registered under."""


def register_domain(
    name: str,
    loader: Loader,
    description: str = "",
    generated: bool = True,
    replace: bool = False,
) -> DomainRecord:
    """Register (or, with ``replace=True``, overwrite) a domain loader."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"domain {name!r} is already registered")
    record = DomainRecord(name, loader, description, generated)
    _REGISTRY[name] = record
    return record


def get_domain(name: str) -> DomainRecord:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownDomainError(
            f"unknown domain {name!r} (registered: {known})"
        ) from None


def available_domains(generated_only: bool = False) -> List[str]:
    """Registered domain names, registration order."""
    return [
        name
        for name, record in _REGISTRY.items()
        if record.generated or not generated_only
    ]


def load_domain(name: str, seed: int = DEFAULT_SEED) -> DomainInstance:
    """Materialize one registered domain at ``seed``."""
    return get_domain(name).loader(seed)


# ---------------------------------------------------------------------------
# Spec-driven loading (used by the built-ins and random domains alike)
# ---------------------------------------------------------------------------


def instance_from_spec(
    spec: DomainSpec, seed: int = DEFAULT_SEED, version: str = "base"
) -> DomainInstance:
    """Load a spec end to end: schema + data + questions + variants."""
    tables = generate_tables(spec, seed)
    database = load_database(spec, seed, version=version, tables=tables)

    def variant_loader(wanted_version: str, variant_seed: int):
        if wanted_version != version:
            raise ValueError(
                f"domain {spec.name!r} only perturbs its base version "
                f"{version!r}, not {wanted_version!r}"
            )
        return load_database(
            spec, seed, version=version, variant_seed=variant_seed
        )

    return DomainInstance(
        spec.name,
        {version: database},
        examples=generate_examples(spec, tables, seed, version=version),
        variant_loader=variant_loader,
        spec=spec,
    )


def register_spec(spec: DomainSpec, description: str = "") -> DomainRecord:
    """Register a :class:`DomainSpec` under its own name."""
    return register_domain(
        spec.name,
        lambda seed, _spec=spec: instance_from_spec(_spec, seed),
        description=description or spec.title,
    )


def load_random_domain(seed: int, entity_count: int = 4) -> DomainInstance:
    """One-off random scenario (not registered): spec and data share ``seed``."""
    return instance_from_spec(_builtins.random_domain(seed, entity_count), seed)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


def _load_football(seed: int) -> DomainInstance:
    # Lazy: repro.footballdb depends on repro.domains.instance, so the
    # import happens at load time, never at registry import time.
    from repro.footballdb import load_all

    return load_all(seed=seed)


for _spec in _builtins.BUILTIN_SPECS:
    register_spec(_spec)

register_domain(
    "football",
    _load_football,
    description="The paper's FootballDB (three hand-written data models)",
    generated=False,
)
