"""Built-in domain specifications and the seeded random-domain generator.

Three hand-curated domains (hospital, retail, flights) mirror the
database families the robustness literature synthesizes over — each has
a realistic FK topology (including the multi-parent children that break
join-path inference) and enough non-key numeric columns that every
morph operator in :data:`repro.domains.morph.DEFAULT_OPERATORS` stays
applicable for chains of four and more steps.

:func:`random_domain` composes a fresh, valid :class:`DomainSpec` from
vocabulary pools — an unlimited supply of scenario shapes for the
grammar fuzzer and the cross-domain conformance suite.

Row counts are two orders of magnitude below FootballDB's ~100K rows on
purpose: a loaded domain is a *unit of fuzz input* that must be cheap
enough to rebuild hundreds of times per CI run.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .spec import DomainSpec, EntitySpec, attr, fk, name_field, pk

# ---------------------------------------------------------------------------
# Hand-curated domains
# ---------------------------------------------------------------------------

HOSPITAL = DomainSpec(
    name="hospital",
    title="Hospital operations",
    description="Departments, physicians, patients and their appointments.",
    entities=(
        EntitySpec(
            "department",
            (
                pk("department_id"),
                name_field(),
                attr("floor", "int", ("int", 1, 9)),
                attr("budget", "int", ("int", 200_000, 4_000_000)),
                attr("head_count", "int", ("int", 4, 60)),
                attr("specialty", "text", ("choice", (
                    "cardiology", "oncology", "neurology", "pediatrics",
                    "radiology", "surgery",
                ))),
            ),
            rows=12,
            name_prefix="Ward ",
        ),
        EntitySpec(
            "doctor",
            (
                pk("doctor_id"),
                name_field(),
                fk("department_id", "department"),
                attr("birth_year", "int", ("year", 1950, 1995)),
                attr("salary", "int", ("int", 60_000, 260_000)),
                attr("years_experience", "int", ("int", 1, 40)),
                attr("board_certified", "bool", ("bool", 0.8)),
            ),
            rows=60,
            name_prefix="Dr. ",
        ),
        EntitySpec(
            "patient",
            (
                pk("patient_id"),
                name_field(),
                attr("birth_year", "int", ("year", 1930, 2020)),
                attr("weight_kg", "real", ("real", 3.0, 140.0)),
                attr("insurance", "text", ("choice", (
                    "public", "private", "none",
                ))),
            ),
            rows=180,
        ),
        EntitySpec(
            "appointment",
            (
                pk("appointment_id"),
                name_field("reference_code"),
                fk("doctor_id", "doctor"),
                fk("patient_id", "patient"),
                attr("year", "int", ("year", 2015, 2024)),
                attr("duration_minutes", "int", ("int", 10, 120)),
                attr("cost", "int", ("int", 40, 900)),
                attr("follow_up", "bool", ("bool", 0.3)),
            ),
            rows=420,
            name_prefix="APT-",
            display="appointment",
        ),
    ),
)

RETAIL = DomainSpec(
    name="retail",
    title="Retail chain",
    description="Suppliers, product catalogue, stores and recorded sales.",
    entities=(
        EntitySpec(
            "supplier",
            (
                pk("supplier_id"),
                name_field(),
                attr("country", "text", ("choice", (
                    "Germany", "France", "Italy", "Poland", "Spain", "Sweden",
                ))),
                attr("rating", "int", ("int", 1, 5)),
                attr("founded", "int", ("year", 1950, 2015)),
            ),
            rows=25,
            name_prefix="Supply ",
        ),
        EntitySpec(
            "product",
            (
                pk("product_id"),
                name_field(),
                fk("supplier_id", "supplier"),
                attr("price", "real", ("real", 0.5, 900.0)),
                attr("weight_grams", "int", ("int", 10, 20_000)),
                attr("category", "text", ("choice", (
                    "grocery", "electronics", "clothing", "toys", "garden",
                ))),
                attr("organic", "bool", ("bool", 0.25)),
            ),
            rows=140,
        ),
        EntitySpec(
            "store",
            (
                pk("store_id"),
                name_field(),
                attr("city", "text", ("choice", (
                    "Zurich", "Berlin", "Vienna", "Milan", "Lyon", "Porto",
                ))),
                attr("opened", "int", ("year", 1980, 2022)),
                attr("square_meters", "int", ("int", 150, 9_000)),
            ),
            rows=18,
            name_prefix="Store ",
        ),
        EntitySpec(
            "sale",
            (
                pk("sale_id"),
                name_field("receipt_code"),
                fk("product_id", "product"),
                fk("store_id", "store"),
                attr("year", "int", ("year", 2018, 2024)),
                attr("quantity", "int", ("int", 1, 40)),
                attr("revenue", "int", ("int", 1, 12_000)),
                attr("discounted", "bool", ("bool", 0.35)),
            ),
            rows=500,
            name_prefix="RCP-",
            display="sale",
        ),
    ),
)

FLIGHTS = DomainSpec(
    name="flights",
    title="Airline network",
    description="Airlines, airports and scheduled flights with bookings.",
    entities=(
        EntitySpec(
            "airline",
            (
                pk("airline_id"),
                name_field(),
                attr("founded", "int", ("year", 1920, 2015)),
                attr("fleet_size", "int", ("int", 4, 900)),
                attr("alliance", "text", ("choice", (
                    "Star", "OneWorld", "SkyTeam", "none",
                ))),
            ),
            rows=16,
            name_prefix="Air ",
        ),
        EntitySpec(
            "airport",
            (
                pk("airport_id"),
                name_field(),
                attr("country", "text", ("choice", (
                    "USA", "Brazil", "Japan", "Germany", "Qatar", "Kenya",
                    "Australia",
                ))),
                attr("runways", "int", ("int", 1, 6)),
                attr("elevation_m", "int", ("int", -5, 4_000)),
                attr("international", "bool", ("bool", 0.7)),
            ),
            rows=40,
            name_prefix="Port ",
        ),
        EntitySpec(
            "flight",
            (
                pk("flight_id"),
                name_field("flight_number"),
                fk("airline_id", "airline"),
                # two FK edges into the same parent — the multi-edge
                # pattern that breaks single-edge join-path inference
                fk("origin_id", "airport"),
                fk("destination_id", "airport"),
                attr("distance_km", "int", ("int", 150, 15_000)),
                attr("duration_minutes", "int", ("int", 35, 1_100)),
                attr("passengers", "int", ("int", 20, 520)),
                attr("delayed", "bool", ("bool", 0.2)),
            ),
            rows=320,
            name_prefix="FL-",
            display="flight",
        ),
    ),
)

BUILTIN_SPECS: Tuple[DomainSpec, ...] = (HOSPITAL, RETAIL, FLIGHTS)


# ---------------------------------------------------------------------------
# Seeded random domains
# ---------------------------------------------------------------------------

_RANDOM_ENTITIES = (
    "region", "company", "project", "course", "vehicle", "warehouse",
    "author", "book", "sensor", "reading", "festival", "artist",
    "league_team", "fixture", "shipment", "port_city", "device", "ticket",
)

_RANDOM_ATTRS: Tuple[Tuple[str, str, Tuple], ...] = (
    ("score", "int", ("int", 0, 100)),
    ("budget", "int", ("int", 1_000, 900_000)),
    ("capacity", "int", ("int", 5, 5_000)),
    ("established", "int", ("year", 1900, 2024)),
    ("rating", "int", ("int", 1, 10)),
    ("weight", "real", ("real", 0.1, 500.0)),
    ("length_cm", "int", ("int", 1, 10_000)),
    ("priority", "int", ("int", 1, 5)),
    ("grade", "text", ("choice", ("A", "B", "C", "D"))),
    ("status", "text", ("choice", ("active", "dormant", "retired"))),
    ("zone", "text", ("choice", ("north", "south", "east", "west"))),
    ("verified", "bool", ("bool", 0.6)),
    ("archived", "bool", ("bool", 0.2)),
)


def random_domain(seed: int, entity_count: int = 4) -> DomainSpec:
    """A fresh, valid domain spec — a pure function of ``seed``.

    The generated topology is parents-first with every non-root entity
    holding one or two FK edges to earlier entities; each entity keeps
    at least two non-key integer attributes so ``widen_types`` and
    ``split_table`` morphs stay applicable, and at least one categorical
    attribute so filter questions instantiate.
    """
    rng = random.Random(f"random-domain|{seed}")
    entity_count = max(2, min(entity_count, len(_RANDOM_ENTITIES)))
    chosen = rng.sample(_RANDOM_ENTITIES, entity_count)
    entities: List[EntitySpec] = []
    for position, entity_name in enumerate(chosen):
        fields = [pk(f"{entity_name}_id"), name_field()]
        if position > 0:
            parent_count = 1 if position == 1 else rng.choice((1, 1, 2))
            parents = rng.sample(chosen[:position], min(parent_count, position))
            for parent in parents:
                fields.append(fk(f"{parent}_id", parent))
        int_attrs = [a for a in _RANDOM_ATTRS if a[1] == "int"]
        other_attrs = [a for a in _RANDOM_ATTRS if a[1] != "int"]
        picked = rng.sample(int_attrs, 2) + rng.sample(
            other_attrs, rng.randint(1, 3)
        )
        # guarantee one categorical for filter_count questions
        if not any(a[2][0] == "choice" for a in picked):
            picked.append(("tier", "text", ("choice", ("gold", "silver", "bronze"))))
        for attr_name, sql_type, generator in picked:
            nullable = 0.08 if rng.random() < 0.25 else 0.0
            fields.append(attr(attr_name, sql_type, generator, nullable=nullable))
        rows = rng.randint(15, 60) * (1 + position)
        entities.append(
            EntitySpec(
                entity_name,
                tuple(fields),
                rows=rows,
                name_prefix=f"{entity_name[:3].title()} ",
            )
        )
    slug = str(seed).replace("-", "m")  # identifiers can't carry a minus
    return DomainSpec(
        name=f"random_{slug}",
        title=f"Random domain #{seed}",
        description="Seeded synthetic domain for fuzzing and conformance.",
        entities=tuple(entities),
    )
