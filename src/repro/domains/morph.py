"""Schema morphing: derive unlimited data-model variants from any base.

The paper measures Text-to-SQL robustness across exactly three
hand-written data models (v1/v2/v3) of one domain.  This module turns
that 3-point robustness curve into an N-point one — over *any* domain:
the operators read nothing but the engine catalog and the data, so a
generated hospital database morphs exactly like FootballDB does.  A
:class:`SchemaMorpher` applies a seeded chain of composable mutation
operators to a base schema and emits, for every chain, a
:class:`MorphedModel` holding

* a valid :class:`~repro.sqlengine.catalog.Schema` (validity is enforced
  by construction — every morphed schema is rebuilt through the catalog
  API, which rejects duplicate/invalid names and dangling FK columns);
* a **data migrator** — the morphed :class:`Database` is repopulated
  from the base database (itself loaded from the shared ``Universe`` by
  the existing loaders) with foreign-key enforcement on, in
  FK-topological order;
* a **gold-SQL rewriter** — an AST-level, scope-aware rewrite on
  :mod:`repro.sqlengine.ast_nodes` under which every gold query of the
  benchmark remains answerable with an execution-equivalent query.

Operator catalogue (each deterministic given the chain's RNG):

=================  ==========================================================
``rename_tables``   re-render table identifiers (camel / abbreviated styles,
                    via :data:`repro.domains.naming.IDENTIFIER_STYLES`)
``rename_columns``  same, for column identifiers (FKs follow)
``reorder_columns`` lossless column permutation within each table
``widen_types``     INTEGER -> REAL on non-key columns (lossless for the
                    engine's EX normalization)
``split_table``     normalize: vertically partition a wide table into a
                    PK/FK 1:1 pair (the v1 -> v2 move, generalized)
``inline_child``    denormalize: fold a total 1:1 child back into its
                    parent (the v2 -> v1 move, generalized)
``clone_reroute``   clone a multi-referenced parent and re-route one FK
                    edge to the copy (the v3 ``national_opponent_team``
                    move, generalized)
``drop_fk``         undeclare one foreign key (schema-graph-only morph)
``declare_fk``      declare an FK for an implicit reference detected from
                    the data (the v3 bridge-table move, generalized)
=================  ==========================================================

A morph's **distance** is the number of operators applied.  Rewrites are
exact for the query surface the gold compiler emits (aliased references,
explicit projections); ``alias.*`` projections over split tables and
set-operation ``ORDER BY <column name>`` tails are outside the contract
(the workload uses neither).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sqlengine import (
    BinaryOp,
    CaseExpr,
    Column,
    ColumnRef,
    Conjunction,
    Database,
    Expression,
    FunctionCall,
    InOp,
    ExistsOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    Result,
    ScalarSubquery,
    Schema,
    SelectItem,
    SelectQuery,
    SetOperation,
    SqlType,
    Star,
    Table,
    TableRef,
    BetweenOp,
    UnaryOp,
    format_query,
    normalize_for_comparison,
    parse_sql,
)

from . import naming


class MorphError(Exception):
    """Raised when no operator chain can be derived from a base."""


# ---------------------------------------------------------------------------
# Schema helpers
# ---------------------------------------------------------------------------


def _clone_schema(
    schema: Schema,
    table_builder: Callable[[Table], Optional[Table]],
    fk_builder: Callable[[object], Optional[Tuple[str, str, str, str]]],
    extra_tables: Sequence[Tuple[Optional[str], Table]] = (),
    extra_fks: Sequence[Tuple[str, str, str, str]] = (),
) -> Schema:
    """Rebuild ``schema`` through the catalog API (which validates).

    ``table_builder`` maps each existing table to its replacement (or
    ``None`` to drop it); ``fk_builder`` maps each existing FK to its
    replacement tuple (or ``None`` to drop it).  ``extra_tables`` are
    ``(after_table_name, table)`` pairs inserted right after the named
    table (``None`` appends at the end); ``extra_fks`` are appended.
    """
    out = Schema(schema.name, version=schema.version)
    ordered: List[Table] = []
    for table in schema.tables:
        replacement = table_builder(table)
        if replacement is not None:
            ordered.append(replacement)
        for anchor, extra in extra_tables:
            if anchor is not None and anchor.lower() == table.name.lower():
                ordered.append(extra)
    for anchor, extra in extra_tables:
        if anchor is None:
            ordered.append(extra)
    for table in ordered:
        out.add_table(table)
    for fk in schema.foreign_keys:
        replacement = fk_builder(fk)
        if replacement is not None:
            out.add_foreign_key(*replacement)
    for spec in extra_fks:
        out.add_foreign_key(*spec)
    return out


def _fk_endpoint_columns(schema: Schema) -> Set[Tuple[str, str]]:
    """Every (table, column) participating in a declared FK, lowercased."""
    endpoints: Set[Tuple[str, str]] = set()
    for fk in schema.foreign_keys:
        endpoints.add((fk.table.lower(), fk.column.lower()))
        endpoints.add((fk.ref_table.lower(), fk.ref_column.lower()))
    return endpoints


def _single_pk(table: Table) -> Optional[str]:
    pks = table.primary_key_columns
    return pks[0] if len(pks) == 1 else None


def _insert_order(schema: Schema) -> List[str]:
    """Tables in FK-topological order (parents first), creation-order stable."""
    names = [table.name for table in schema.tables]
    deps: Dict[str, Set[str]] = {name.lower(): set() for name in names}
    for fk in schema.foreign_keys:
        if fk.table.lower() != fk.ref_table.lower():
            deps[fk.table.lower()].add(fk.ref_table.lower())
    ordered: List[str] = []
    placed: Set[str] = set()
    remaining = list(names)
    while remaining:
        progressed = False
        for name in list(remaining):
            if deps[name.lower()] <= placed:
                ordered.append(name)
                placed.add(name.lower())
                remaining.remove(name)
                progressed = True
        if not progressed:  # FK cycle: fall back to creation order
            ordered.extend(remaining)
            break
    return ordered


RowProducer = Callable[[Database], Iterable[tuple]]


def _migrate(
    old_db: Database, new_db: Database, producers: Dict[str, RowProducer]
) -> None:
    """Populate ``new_db`` in FK-topological order.

    ``producers`` maps lowercased new-table names to row producers over
    the old database; tables without a producer copy the same-named old
    table verbatim.
    """
    for name in _insert_order(new_db.schema):
        producer = producers.get(name.lower())
        if producer is not None:
            rows: Iterable[tuple] = producer(old_db)
        else:
            rows = old_db.table_data(name).rows
        new_db.insert_many(name, rows)


# ---------------------------------------------------------------------------
# Scope-aware AST rewriting
# ---------------------------------------------------------------------------


class _Scope:
    """Alias bindings of one SELECT core, chained to enclosing scopes."""

    __slots__ = ("select", "parent", "refs")

    def __init__(self, select: SelectQuery, parent: Optional["_Scope"]) -> None:
        self.select = select
        self.parent = parent
        self.refs: Dict[str, TableRef] = {}
        for ref in select.table_refs:
            self.refs[ref.binding.lower()] = ref


@dataclass(frozen=True)
class _Resolution:
    scope: _Scope
    binding: str  # as written (original case)
    ref: TableRef

    @property
    def table(self) -> str:
        return self.ref.table.lower()


def _direct_subqueries(expr: Expression):
    for part in expr.walk():
        if isinstance(part, InOp) and part.subquery is not None:
            yield part.subquery
        elif isinstance(part, ExistsOp):
            yield part.subquery
        elif isinstance(part, ScalarSubquery):
            yield part.subquery


def _collect_scopes(
    node: QueryNode, parent: Optional[_Scope] = None
) -> List[Tuple[SelectQuery, _Scope]]:
    """All SELECT cores with their scopes, outer before inner."""
    pairs: List[Tuple[SelectQuery, _Scope]] = []
    if isinstance(node, SetOperation):
        pairs.extend(_collect_scopes(node.left, parent))
        pairs.extend(_collect_scopes(node.right, parent))
        return pairs
    scope = _Scope(node, parent)
    pairs.append((node, scope))
    for expr in list(node.iter_expressions()):
        for sub in _direct_subqueries(expr):
            pairs.extend(_collect_scopes(sub, scope))
    return pairs


def _resolve(
    ref: ColumnRef, scope: _Scope, schema: Schema
) -> Optional[_Resolution]:
    """Bind a column reference to the table instance that owns it.

    Qualified references follow the alias chain (innermost scope wins);
    unqualified references search each scope's FROM-order tables for one
    declaring the column.  Bindings over tables unknown to ``schema``
    (e.g. freshly injected extension tables) are skipped so repeated
    resolution passes stay consistent.
    """
    if ref.table is not None:
        wanted = ref.table.lower()
        current: Optional[_Scope] = scope
        while current is not None:
            bound = current.refs.get(wanted)
            if bound is not None:
                if not schema.has_table(bound.table):
                    return None
                return _Resolution(current, bound.binding, bound)
            current = current.parent
        return None
    current = scope
    while current is not None:
        for bound in current.select.table_refs:
            if not schema.has_table(bound.table):
                continue
            if schema.table(bound.table).has_column(ref.column):
                return _Resolution(current, bound.binding, bound)
        current = current.parent
    return None


def _map_expr(
    expr: Expression, col_fn: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild an expression tree, applying ``col_fn`` to column/star refs.

    Nested query nodes are preserved by reference — subqueries are
    rewritten through their own scope pass, not through this rebuilder.
    """
    recur = lambda e: _map_expr(e, col_fn)  # noqa: E731
    if isinstance(expr, (ColumnRef, Star)):
        return col_fn(expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, recur(expr.left), recur(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, recur(expr.operand))
    if isinstance(expr, Conjunction):
        return Conjunction(expr.op, tuple(recur(term) for term in expr.terms))
    if isinstance(expr, LikeOp):
        return LikeOp(
            recur(expr.expr), recur(expr.pattern), expr.case_insensitive, expr.negated
        )
    if isinstance(expr, BetweenOp):
        return BetweenOp(
            recur(expr.expr), recur(expr.low), recur(expr.high), expr.negated
        )
    if isinstance(expr, IsNullOp):
        return IsNullOp(recur(expr.expr), expr.negated)
    if isinstance(expr, InOp):
        options = (
            tuple(recur(option) for option in expr.options)
            if expr.options is not None
            else None
        )
        return InOp(recur(expr.expr), options, expr.subquery, expr.negated)
    if isinstance(expr, ExistsOp):
        return expr
    if isinstance(expr, ScalarSubquery):
        return expr
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(recur(arg) for arg in expr.args), expr.distinct
        )
    if isinstance(expr, CaseExpr):
        whens = tuple(
            (recur(condition), recur(result)) for condition, result in expr.whens
        )
        default = recur(expr.default) if expr.default is not None else None
        return CaseExpr(whens, default)
    return expr


def _apply_exprs(select: SelectQuery, fn: Callable[[Expression], Expression]) -> None:
    select.projections = [
        SelectItem(fn(item.expr), item.alias) for item in select.projections
    ]
    select.joins = [
        Join(
            join.kind,
            join.table,
            fn(join.condition) if join.condition is not None else None,
        )
        for join in select.joins
    ]
    if select.where is not None:
        select.where = fn(select.where)
    select.group_by = [fn(expr) for expr in select.group_by]
    if select.having is not None:
        select.having = fn(select.having)
    select.order_by = [
        OrderItem(fn(item.expr), item.descending) for item in select.order_by
    ]


def _replace_table_refs(
    select: SelectQuery, replace: Callable[[TableRef], TableRef]
) -> None:
    if select.from_table is not None:
        select.from_table = replace(select.from_table)
    select.joins = [
        Join(join.kind, replace(join.table), join.condition) for join in select.joins
    ]


def _all_bindings(pairs: Sequence[Tuple[SelectQuery, _Scope]]) -> Set[str]:
    return {binding for _, scope in pairs for binding in scope.refs}


# ---------------------------------------------------------------------------
# Morph steps and operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MorphStep:
    """One applied operator: result schema + migrator + query rewriter."""

    operator: str
    detail: str
    schema: Schema
    producers: Dict[str, RowProducer] = field(default_factory=dict, repr=False)
    rewriter: Optional[Callable[[QueryNode], QueryNode]] = field(
        default=None, repr=False
    )

    def migrate(self, old_db: Database, new_db: Database) -> None:
        _migrate(old_db, new_db, self.producers)

    def rewrite(self, node: QueryNode) -> QueryNode:
        if self.rewriter is None:
            return node
        return self.rewriter(node)


class MorphOperator:
    """Base class: :meth:`plan` returns a step or ``None`` if inapplicable."""

    name = "abstract"

    def plan(
        self, schema: Schema, database: Database, rng: random.Random
    ) -> Optional[MorphStep]:
        raise NotImplementedError


def _styled_names(
    names: Sequence[str], style: str
) -> Dict[str, str]:
    """name -> styled name, collision-proofed case-insensitively."""
    style_fn = naming.IDENTIFIER_STYLES[style]
    mapping: Dict[str, str] = {}
    taken: Set[str] = set()
    for name in names:
        candidate = style_fn(name)
        if not candidate or not candidate.isidentifier():
            candidate = name
        suffix = 2
        while candidate.lower() in taken:
            candidate = f"{style_fn(name)}{suffix}"
            suffix += 1
        taken.add(candidate.lower())
        mapping[name.lower()] = candidate
    return mapping


class RenameTables(MorphOperator):
    name = "rename_tables"

    def plan(self, schema, database, rng):
        style = rng.choice(("camel", "abbrev", "pascal"))
        mapping = _styled_names(schema.table_names, style)
        if all(mapping[name.lower()] == name for name in schema.table_names):
            return None

        def build_table(table: Table) -> Table:
            return Table(mapping[table.name.lower()], table.columns)

        def build_fk(fk):
            return (
                mapping[fk.table.lower()],
                fk.column,
                mapping[fk.ref_table.lower()],
                fk.ref_column,
            )

        new_schema = _clone_schema(schema, build_table, build_fk)

        def rewrite(node: QueryNode) -> QueryNode:
            pairs = _collect_scopes(node)
            for select, scope in pairs:

                def col_fn(expr):
                    if expr.table is None:
                        return expr
                    resolution = _resolve(
                        ColumnRef("_", expr.table), scope, schema
                    )
                    if (
                        resolution is None
                        or resolution.ref.alias is not None
                        or resolution.table not in mapping
                    ):
                        return expr
                    new_table = mapping[resolution.table]
                    if isinstance(expr, Star):
                        return Star(new_table)
                    return ColumnRef(expr.column, new_table)

                _apply_exprs(select, lambda e: _map_expr(e, col_fn))
            for select, _ in pairs:
                _replace_table_refs(
                    select,
                    lambda ref: TableRef(
                        mapping.get(ref.table.lower(), ref.table), ref.alias
                    ),
                )
            return node

        def producers():
            reverse = {new.lower(): old for old, new in mapping.items()}
            return {
                new.lower(): (
                    lambda db, old=reverse[new.lower()]: db.table_data(old).rows
                )
                for new in mapping.values()
            }

        return MorphStep(self.name, f"style={style}", new_schema, producers(), rewrite)


class RenameColumns(MorphOperator):
    name = "rename_columns"

    def plan(self, schema, database, rng):
        style = rng.choice(("camel", "abbrev", "pascal"))
        per_table: Dict[str, Dict[str, str]] = {}
        changed = False
        for table in schema.tables:
            mapping = _styled_names(table.column_names, style)
            per_table[table.name.lower()] = mapping
            if any(mapping[c.lower()] != c for c in table.column_names):
                changed = True
        if not changed:
            return None

        def build_table(table: Table) -> Table:
            mapping = per_table[table.name.lower()]
            return Table(
                table.name,
                [
                    Column(mapping[c.name.lower()], c.sql_type, c.primary_key)
                    for c in table.columns
                ],
            )

        def build_fk(fk):
            return (
                fk.table,
                per_table[fk.table.lower()][fk.column.lower()],
                fk.ref_table,
                per_table[fk.ref_table.lower()][fk.ref_column.lower()],
            )

        new_schema = _clone_schema(schema, build_table, build_fk)

        def rewrite(node: QueryNode) -> QueryNode:
            for select, scope in _collect_scopes(node):

                def col_fn(expr):
                    if isinstance(expr, Star):
                        return expr
                    resolution = _resolve(expr, scope, schema)
                    if resolution is None:
                        return expr
                    mapping = per_table.get(resolution.table)
                    if mapping is None or expr.column.lower() not in mapping:
                        return expr
                    return ColumnRef(mapping[expr.column.lower()], expr.table)

                _apply_exprs(select, lambda e: _map_expr(e, col_fn))
            return node

        return MorphStep(self.name, f"style={style}", new_schema, {}, rewrite)


class ReorderColumns(MorphOperator):
    name = "reorder_columns"

    def plan(self, schema, database, rng):
        permutations: Dict[str, List[int]] = {}
        for table in schema.tables:
            order = list(range(len(table.columns)))
            rng.shuffle(order)
            permutations[table.name.lower()] = order
        if all(
            order == sorted(order) for order in permutations.values()
        ):  # pragma: no cover - astronomically unlikely
            return None

        def build_table(table: Table) -> Table:
            order = permutations[table.name.lower()]
            return Table(table.name, [table.columns[i] for i in order])

        new_schema = _clone_schema(schema, build_table, lambda fk: tuple(
            (fk.table, fk.column, fk.ref_table, fk.ref_column)
        ))

        def producer(name: str) -> RowProducer:
            order = permutations[name.lower()]

            def produce(db: Database) -> Iterable[tuple]:
                return [
                    tuple(row[i] for i in order) for row in db.table_data(name).rows
                ]

            return produce

        producers = {
            table.name.lower(): producer(table.name) for table in schema.tables
        }
        return MorphStep(self.name, "shuffled", new_schema, producers, None)


class WidenTypes(MorphOperator):
    name = "widen_types"

    def plan(self, schema, database, rng):
        endpoints = _fk_endpoint_columns(schema)
        eligible = [
            (table.name, column.name)
            for table in schema.tables
            for column in table.columns
            if column.sql_type is SqlType.INTEGER
            and not column.primary_key
            and (table.name.lower(), column.name.lower()) not in endpoints
        ]
        if not eligible:
            return None
        count = rng.randint(1, min(4, len(eligible)))
        chosen = set(
            (t.lower(), c.lower()) for t, c in rng.sample(eligible, count)
        )

        def build_table(table: Table) -> Table:
            return Table(
                table.name,
                [
                    Column(
                        c.name,
                        SqlType.REAL
                        if (table.name.lower(), c.name.lower()) in chosen
                        else c.sql_type,
                        c.primary_key,
                    )
                    for c in table.columns
                ],
            )

        new_schema = _clone_schema(schema, build_table, lambda fk: tuple(
            (fk.table, fk.column, fk.ref_table, fk.ref_column)
        ))
        detail = ",".join(sorted(f"{t}.{c}" for t, c in chosen))
        return MorphStep(self.name, detail, new_schema, {}, None)


class SplitTable(MorphOperator):
    """Normalize: move a column subset into a 1:1 PK/FK extension table."""

    name = "split_table"

    def plan(self, schema, database, rng):
        fk_targets = {
            (fk.ref_table.lower(), fk.ref_column.lower())
            for fk in schema.foreign_keys
        }
        candidates = []
        for table in schema.tables:
            pk = _single_pk(table)
            if pk is None:
                continue
            movable = [
                c.name
                for c in table.columns
                if not c.primary_key
                and (table.name.lower(), c.name.lower()) not in fk_targets
            ]
            if len(movable) >= 2:
                candidates.append((table.name, pk, movable))
        if not candidates:
            return None
        target, pk, movable = rng.choice(candidates)
        count = rng.randint(2, min(4, len(movable)))
        moved = rng.sample(movable, count)
        moved_lower = {c.lower() for c in moved}
        ext_name = f"{target}_detail"
        suffix = 2
        while schema.has_table(ext_name):
            ext_name = f"{target}_detail{suffix}"
            suffix += 1
        base_table = schema.table(target)

        def build_table(table: Table) -> Optional[Table]:
            if table.name.lower() != target.lower():
                return table
            return Table(
                table.name,
                [c for c in table.columns if c.name.lower() not in moved_lower],
            )

        ext_columns = [base_table.column(pk)] + [
            Column(c.name, c.sql_type, False)
            for c in base_table.columns
            if c.name.lower() in moved_lower
        ]

        def build_fk(fk):
            if fk.table.lower() == target.lower() and fk.column.lower() in moved_lower:
                return (ext_name, fk.column, fk.ref_table, fk.ref_column)
            return (fk.table, fk.column, fk.ref_table, fk.ref_column)

        new_schema = _clone_schema(
            schema,
            build_table,
            build_fk,
            extra_tables=[(target, Table(ext_name, ext_columns))],
            extra_fks=[(ext_name, pk, target, pk)],
        )

        keep_positions = [
            i
            for i, c in enumerate(base_table.columns)
            if c.name.lower() not in moved_lower
        ]
        ext_positions = [base_table.column_position(pk)] + [
            i
            for i, c in enumerate(base_table.columns)
            if c.name.lower() in moved_lower
        ]

        def produce_main(db: Database) -> Iterable[tuple]:
            return [
                tuple(row[i] for i in keep_positions)
                for row in db.table_data(target).rows
            ]

        def produce_ext(db: Database) -> Iterable[tuple]:
            return [
                tuple(row[i] for i in ext_positions)
                for row in db.table_data(target).rows
            ]

        producers = {target.lower(): produce_main, ext_name.lower(): produce_ext}

        def rewrite(node: QueryNode) -> QueryNode:
            pairs = _collect_scopes(node)
            taken = {b.lower() for b in _all_bindings(pairs)}
            needs: Dict[Tuple[int, str], _Resolution] = {}
            for select, scope in pairs:
                for expr in select.iter_expressions():
                    for part in expr.walk():
                        if not isinstance(part, ColumnRef):
                            continue
                        resolution = _resolve(part, scope, schema)
                        if (
                            resolution is not None
                            and resolution.table == target.lower()
                            and part.column.lower() in moved_lower
                        ):
                            key = (id(resolution.scope.select), resolution.binding)
                            needs[key] = resolution
            if not needs:
                return node
            fresh: Dict[Tuple[int, str], str] = {}
            counter = 1
            for key in needs:
                while f"m{counter}" in taken:
                    counter += 1
                fresh[key] = f"M{counter}"
                taken.add(f"m{counter}")
            for select, scope in pairs:

                def col_fn(expr):
                    if isinstance(expr, Star):
                        return expr
                    resolution = _resolve(expr, scope, schema)
                    if resolution is None:
                        return expr
                    if (
                        resolution.table == target.lower()
                        and expr.column.lower() in moved_lower
                    ):
                        key = (id(resolution.scope.select), resolution.binding)
                        return ColumnRef(expr.column, fresh[key])
                    if expr.table is None:
                        # The extension table duplicates the PK (and moved
                        # columns) of the split table, so a previously
                        # unambiguous bare reference can become ambiguous
                        # once the extension join is in scope — qualify it
                        # with the binding it resolved to.
                        return ColumnRef(expr.column, resolution.binding)
                    return expr

                _apply_exprs(select, lambda e: _map_expr(e, col_fn))
            by_owner: Dict[int, Dict[str, str]] = {}
            for (select_id, binding), alias in fresh.items():
                by_owner.setdefault(select_id, {})[binding.lower()] = (binding, alias)
            for select, _ in pairs:
                owner_map = by_owner.get(id(select))
                if not owner_map:
                    continue

                def ext_join(binding: str, alias: str) -> Join:
                    condition = BinaryOp(
                        "=", ColumnRef(pk, alias), ColumnRef(pk, binding)
                    )
                    return Join(JoinKind.INNER, TableRef(ext_name, alias), condition)

                # The extension join must bind immediately after the table
                # instance it extends: later join conditions may already
                # reference the fresh alias.
                rebuilt: List[Join] = []
                if (
                    select.from_table is not None
                    and select.from_table.binding.lower() in owner_map
                ):
                    binding, alias = owner_map[select.from_table.binding.lower()]
                    rebuilt.append(ext_join(binding, alias))
                for join_item in select.joins:
                    rebuilt.append(join_item)
                    if join_item.table.binding.lower() in owner_map:
                        binding, alias = owner_map[join_item.table.binding.lower()]
                        rebuilt.append(ext_join(binding, alias))
                select.joins = rebuilt
            return node

        detail = f"{target} -> {ext_name}({', '.join(moved)})"
        return MorphStep(self.name, detail, new_schema, producers, rewrite)


class InlineChild(MorphOperator):
    """Denormalize: fold a total 1:1 child table back into its parent."""

    name = "inline_child"

    def plan(self, schema, database, rng):
        referenced = {fk.ref_table.lower() for fk in schema.foreign_keys}
        candidates = []
        for fk in schema.foreign_keys:
            child = schema.table(fk.table)
            child_pk = _single_pk(child)
            if child_pk is None or child_pk.lower() != fk.column.lower():
                continue
            parent = schema.table(fk.ref_table)
            parent_pk = _single_pk(parent)
            if parent_pk is None or parent_pk.lower() != fk.ref_column.lower():
                continue
            if child.name.lower() == parent.name.lower():
                continue
            if child.name.lower() in referenced:
                continue  # something else points at the child; keep it
            child_data = database.table_data(child.name)
            parent_data = database.table_data(parent.name)
            if len(child_data) != len(parent_data):
                continue
            if child_data.column_values(child_pk) != parent_data.column_values(
                parent_pk
            ):
                continue
            candidates.append((child.name, child_pk, parent.name, parent_pk, fk))
        if not candidates:
            return None
        child_name, child_pk, parent_name, parent_pk, inline_fk = rng.choice(
            sorted(candidates)
        )
        child = schema.table(child_name)
        parent = schema.table(parent_name)
        taken = {c.lower() for c in parent.column_names}
        column_map: Dict[str, str] = {child_pk.lower(): parent_pk}
        appended: List[Column] = []
        for c in child.columns:
            if c.name.lower() == child_pk.lower():
                continue
            new_name = c.name
            if new_name.lower() in taken:
                new_name = f"{child_name}_{c.name}"
            suffix = 2
            while new_name.lower() in taken:
                new_name = f"{child_name}_{c.name}{suffix}"
                suffix += 1
            taken.add(new_name.lower())
            column_map[c.name.lower()] = new_name
            appended.append(Column(new_name, c.sql_type, False))

        def build_table(table: Table) -> Optional[Table]:
            if table.name.lower() == child_name.lower():
                return None
            if table.name.lower() == parent_name.lower():
                return Table(table.name, list(table.columns) + appended)
            return table

        def build_fk(fk):
            if fk is inline_fk:
                return None
            if fk.table.lower() == child_name.lower():
                return (
                    parent_name,
                    column_map[fk.column.lower()],
                    fk.ref_table,
                    fk.ref_column,
                )
            return (fk.table, fk.column, fk.ref_table, fk.ref_column)

        new_schema = _clone_schema(schema, build_table, build_fk)

        child_pk_position = child.column_position(child_pk)
        child_positions = [
            i
            for i, c in enumerate(child.columns)
            if c.name.lower() != child_pk.lower()
        ]
        parent_pk_position = parent.column_position(parent_pk)

        def produce_parent(db: Database) -> Iterable[tuple]:
            by_pk = {
                normalize_for_comparison(row[child_pk_position]): row
                for row in db.table_data(child_name).rows
            }
            merged = []
            for row in db.table_data(parent_name).rows:
                extra = by_pk[normalize_for_comparison(row[parent_pk_position])]
                merged.append(row + tuple(extra[i] for i in child_positions))
            return merged

        producers = {parent_name.lower(): produce_parent}

        def rewrite(node: QueryNode) -> QueryNode:
            pairs = _collect_scopes(node)
            for select, scope in pairs:

                def col_fn(expr):
                    if isinstance(expr, Star):
                        return expr
                    resolution = _resolve(expr, scope, schema)
                    if resolution is None or resolution.table != child_name.lower():
                        return expr
                    new_column = column_map.get(expr.column.lower(), expr.column)
                    new_table = expr.table
                    if new_table is not None and resolution.ref.alias is None:
                        new_table = parent_name  # unaliased binding renames
                    return ColumnRef(new_column, new_table)

                _apply_exprs(select, lambda e: _map_expr(e, col_fn))
            for select, _ in pairs:
                _replace_table_refs(
                    select,
                    lambda ref: TableRef(parent_name, ref.alias)
                    if ref.table.lower() == child_name.lower()
                    else ref,
                )
            return node

        detail = f"{child_name} -> {parent_name}"
        return MorphStep(self.name, detail, new_schema, producers, rewrite)


class CloneReroute(MorphOperator):
    """Clone a multi-referenced parent table; re-route one FK to the copy."""

    name = "clone_reroute"

    def plan(self, schema, database, rng):
        def pk_targeting(fk) -> bool:
            return _single_pk(schema.table(fk.ref_table)) == fk.ref_column

        multi = [
            fk
            for fk in schema.foreign_keys
            if fk.table.lower() != fk.ref_table.lower()
            and pk_targeting(fk)
            and len(schema.foreign_keys_between(fk.table, fk.ref_table)) >= 2
        ]
        pool = multi or [
            fk
            for fk in schema.foreign_keys
            if fk.table.lower() != fk.ref_table.lower() and pk_targeting(fk)
        ]
        if not pool:
            return None
        fk = rng.choice(sorted(pool, key=lambda f: f.describe()))
        parent = schema.table(fk.ref_table)
        parent_pk = _single_pk(parent)
        stem = fk.column[:-3] if fk.column.lower().endswith("_id") else fk.column
        clone_name = f"{stem}_{parent.name}"
        suffix = 2
        while schema.has_table(clone_name):
            clone_name = f"{stem}_{parent.name}{suffix}"
            suffix += 1

        def build_fk(existing):
            if existing is fk:
                return (fk.table, fk.column, clone_name, fk.ref_column)
            return (
                existing.table,
                existing.column,
                existing.ref_table,
                existing.ref_column,
            )

        new_schema = _clone_schema(
            schema,
            lambda table: table,
            build_fk,
            extra_tables=[(parent.name, Table(clone_name, parent.columns))],
        )

        producers = {
            clone_name.lower(): lambda db: db.table_data(parent.name).rows
        }

        def rewrite(node: QueryNode) -> QueryNode:
            for select, scope in _collect_scopes(node):
                rebind: Set[str] = set()
                conditions = [
                    join.condition
                    for join in select.joins
                    if join.condition is not None
                ]
                if select.where is not None:
                    conditions.append(select.where)
                for condition in conditions:
                    for part in condition.walk():
                        if not (
                            isinstance(part, BinaryOp)
                            and part.op == "="
                            and isinstance(part.left, ColumnRef)
                            and isinstance(part.right, ColumnRef)
                        ):
                            continue
                        for pk_side, fk_side in (
                            (part.left, part.right),
                            (part.right, part.left),
                        ):
                            pk_res = _resolve(pk_side, scope, schema)
                            fk_res = _resolve(fk_side, scope, schema)
                            if (
                                pk_res is not None
                                and fk_res is not None
                                and pk_res.scope.select is select
                                and pk_res.table == parent.name.lower()
                                and pk_side.column.lower() == parent_pk.lower()
                                and pk_res.ref.alias is not None
                                and fk_res.table == fk.table.lower()
                                and fk_side.column.lower() == fk.column.lower()
                            ):
                                rebind.add(pk_res.binding.lower())
                if rebind:
                    _replace_table_refs(
                        select,
                        lambda ref: TableRef(clone_name, ref.alias)
                        if ref.alias is not None
                        and ref.alias.lower() in rebind
                        and ref.table.lower() == parent.name.lower()
                        else ref,
                    )
            return node

        detail = f"{fk.table}.{fk.column} -> {clone_name}.{fk.ref_column}"
        return MorphStep(self.name, detail, new_schema, producers, rewrite)


class DropForeignKey(MorphOperator):
    name = "drop_fk"

    def plan(self, schema, database, rng):
        if not schema.foreign_keys:
            return None
        victim = rng.choice(sorted(schema.foreign_keys, key=lambda f: f.describe()))

        def build_fk(fk):
            if fk is victim:
                return None
            return (fk.table, fk.column, fk.ref_table, fk.ref_column)

        new_schema = _clone_schema(schema, lambda table: table, build_fk)
        return MorphStep(self.name, victim.describe(), new_schema, {}, None)


class DeclareForeignKey(MorphOperator):
    """Declare an implicit reference detected from column names + data."""

    name = "declare_fk"

    def plan(self, schema, database, rng):
        declared = {
            (fk.table.lower(), fk.column.lower()) for fk in schema.foreign_keys
        }
        candidates = []
        for parent in schema.tables:
            pk = _single_pk(parent)
            if pk is None:
                continue
            parent_values = database.table_data(parent.name).column_values(pk)
            for child in schema.tables:
                if child.name.lower() == parent.name.lower():
                    continue
                if not child.has_column(pk):
                    continue
                column = child.column(pk)
                if column.primary_key:
                    continue
                if (child.name.lower(), column.name.lower()) in declared:
                    continue
                values = database.table_data(child.name).column_values(column.name)
                if not values or not (values - {None}) <= parent_values:
                    continue
                candidates.append((child.name, column.name, parent.name, pk))
        if not candidates:
            return None
        spec = rng.choice(sorted(candidates))
        new_schema = _clone_schema(
            schema,
            lambda table: table,
            lambda fk: (fk.table, fk.column, fk.ref_table, fk.ref_column),
            extra_fks=[spec],
        )
        detail = f"{spec[0]}.{spec[1]} -> {spec[2]}.{spec[3]}"
        return MorphStep(self.name, detail, new_schema, {}, None)


DEFAULT_OPERATORS: Tuple[MorphOperator, ...] = (
    RenameTables(),
    RenameColumns(),
    ReorderColumns(),
    WidenTypes(),
    SplitTable(),
    InlineChild(),
    CloneReroute(),
    DropForeignKey(),
    DeclareForeignKey(),
)


# ---------------------------------------------------------------------------
# Morphed models and the morpher
# ---------------------------------------------------------------------------


@dataclass
class MorphedModel:
    """One derived data-model version: schema, data and gold rewriter."""

    version: str
    base_version: str
    schema: Schema
    database: Database
    steps: List[MorphStep]

    @property
    def distance(self) -> int:
        """Morph distance: number of operators applied to the base."""
        return len(self.steps)

    @property
    def operator_names(self) -> Tuple[str, ...]:
        return tuple(step.operator for step in self.steps)

    def describe(self) -> str:
        chain = "; ".join(f"{s.operator}({s.detail})" for s in self.steps)
        return f"{self.version} (from {self.base_version}, d={self.distance}): {chain}"

    def rewrite_ast(self, node: QueryNode) -> QueryNode:
        """Rewrite a query AST for this model.  Takes ownership of ``node``
        (SELECT cores may be mutated in place)."""
        for step in self.steps:
            node = step.rewrite(node)
        return node

    def rewrite_sql(self, sql: str) -> str:
        """Rewrite gold SQL text into this model's execution-equivalent form."""
        return format_query(self.rewrite_ast(parse_sql(sql)))


class SchemaMorpher:
    """Derives data-model variants from a base database, deterministically.

    ``SchemaMorpher(seed=s).derive(db, count=n)`` always produces the
    same ``n`` chains for the same base — morphs are pure functions of
    ``(seed, base, count, steps)``.
    """

    def __init__(
        self,
        seed: int = 0,
        operators: Optional[Sequence[MorphOperator]] = None,
    ) -> None:
        self.seed = seed
        self.operators: Tuple[MorphOperator, ...] = tuple(
            operators if operators is not None else DEFAULT_OPERATORS
        )

    def morph(
        self,
        database: Database,
        name: str,
        steps: int = 3,
    ) -> MorphedModel:
        """Apply one operator chain of up to ``steps`` mutations."""
        rng = random.Random(f"morph|{self.seed}|{name}")
        pool = list(self.operators)
        rng.shuffle(pool)
        applied: List[MorphStep] = []
        current = database
        for operator in pool:
            if len(applied) >= steps:
                break
            step = operator.plan(current.schema, current, rng)
            if step is None:
                continue
            staging = Database(step.schema, plan_cache_size=0)
            step.migrate(current, staging)
            applied.append(step)
            current = staging
        if not applied:
            raise MorphError(
                f"no operator applies to schema "
                f"{database.schema.name}/{database.schema.version}"
            )
        final_schema = current.schema
        final_schema.version = name
        final = Database(final_schema)
        _migrate(current, final, {})
        return MorphedModel(
            version=name,
            base_version=database.schema.version,
            schema=final_schema,
            database=final,
            steps=applied,
        )

    def derive(
        self,
        database: Database,
        count: int = 5,
        steps: int = 3,
        name_prefix: Optional[str] = None,
    ) -> List[MorphedModel]:
        """``count`` independent morph chains, named ``<base>~m1`` …"""
        prefix = name_prefix or (database.schema.version or database.schema.name)
        return [
            self.morph(database, f"{prefix}~m{index + 1}", steps=steps)
            for index in range(count)
        ]


# ---------------------------------------------------------------------------
# Verification helpers (used by tests, the verify script and CI smoke)
# ---------------------------------------------------------------------------


#: the two storage spellings of SQL booleans this library meets:
#: the engine's EX normalization emits lowercase text, the sqlite
#: bridge stores Python's ``str(True)`` capitalization
_BOOLEAN_TEXT = {"True": "true", "False": "false"}


def result_signature(result) -> tuple:
    """Order-insensitive, type-tolerant signature of a query result.

    Delegates to the engine's EX normalization
    (:meth:`~repro.sqlengine.executor.Result.normalized_multiset`:
    integral floats fold to ints, booleans to text) so a widened or
    re-typed morph compares equal to its base exactly when the EX
    metric would call them equal.  Boolean *text* additionally folds
    case (``'True'`` == ``'true'``) so a projected flag column compares
    equal across the engine and the sqlite bridge's text storage.
    Accepts any object exposing ``rows`` (e.g. a sqlite3 adapter), not
    just engine results.
    """
    if not isinstance(result, Result):
        result = Result([], list(result.rows))
    counts: Dict[tuple, int] = {}
    for row, count in result.normalized_multiset().items():
        key = tuple(
            _BOOLEAN_TEXT.get(value, value) if isinstance(value, str) else value
            for value in row
        )
        counts[key] = counts.get(key, 0) + count
    return tuple(
        sorted(
            counts.items(),
            key=lambda item: tuple(
                (value is None, str(type(value)), str(value)) for value in item[0]
            ),
        )
    )


def verify_morph(
    morph: MorphedModel, base: Database, queries: Sequence[str]
) -> List[Tuple[str, str]]:
    """Execution-equivalence check of ``morph`` against its base.

    Runs every base-model gold query on ``base`` and its rewrite on the
    morphed database; returns the ``(base_sql, morphed_sql)`` pairs whose
    normalized result multisets disagree (empty list = fully equivalent).
    """
    mismatches: List[Tuple[str, str]] = []
    for sql in queries:
        rewritten = morph.rewrite_sql(sql)
        expected = result_signature(base.execute(sql))
        observed = result_signature(morph.database.execute(rewritten))
        if expected != observed:
            mismatches.append((sql, rewritten))
    return mismatches
