"""Grammar-based SQL fuzzing with differential verification.

:class:`GrammarQueryFuzzer` walks the engine's grammar productions
(SELECT cores with FK-path joins, predicate trees, aggregation with
GROUP BY/HAVING, correlated IN/EXISTS subqueries — the decorrelation
rewrite's whole input space, NOT IN over NULL-bearing columns
included — scalar subqueries, ORDER BY + LIMIT under a total order,
set operations) and
instantiates them *schema-aware*: literals are sampled from the actual
column data so predicates are selective, FK joins follow declared
edges, and every emitted query is built as an engine AST — parseable
and type-correct by construction.

:func:`differential_fuzz` then executes each query under every engine
configuration (row/vectorized × optimizer on/off) and on sqlite3 (via
:mod:`repro.sqlengine.sqlite_bridge`), asserting normalized result
multisets agree everywhere.  Generated domains make the input space
unbounded: every :func:`repro.domains.registry.load_random_domain` seed
is a fresh database shape to fuzz.

The grammar deliberately stays inside the *shared* semantics of the
engine and sqlite so a divergence is always a bug, never a dialect
artifact: ``ILIKE`` only (sqlite's default ``LIKE`` matches its
semantics), no ``/`` or ``%`` (real vs. integer division), boolean
columns compared through their text form, and ``LIMIT`` only under a
total order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sqlengine import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Conjunction,
    Database,
    EngineError,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    SqlType,
    Star,
    TableRef,
    UnaryOp,
    format_query,
    sqlite_dialect,
    sqlite_result,
    to_sqlite,
)

from .morph import result_signature

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class _ColumnInfo:
    table: str
    name: str
    sql_type: SqlType
    is_key: bool  # PK or FK endpoint — joinable, poor filter target


class GrammarQueryFuzzer:
    """Seeded random query generator over one database's schema + data."""

    def __init__(
        self,
        database: Database,
        seed: int = 0,
        max_joins: int = 2,
        max_predicates: int = 3,
        value_sample: int = 24,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.rng = random.Random(f"grammar-fuzz|{self.schema.name}|{seed}")
        self.max_joins = max_joins
        self.max_predicates = max_predicates
        self._columns: Dict[str, List[_ColumnInfo]] = {}
        self._values: Dict[Tuple[str, str], List[object]] = {}
        key_endpoints = set()
        for fk in self.schema.foreign_keys:
            key_endpoints.add((fk.table.lower(), fk.column.lower()))
            key_endpoints.add((fk.ref_table.lower(), fk.ref_column.lower()))
        for table in self.schema.tables:
            infos = []
            rows = database.table_data(table.name).rows
            for position, column in enumerate(table.columns):
                is_key = column.primary_key or (
                    (table.name.lower(), column.name.lower()) in key_endpoints
                )
                infos.append(
                    _ColumnInfo(table.name, column.name, column.sql_type, is_key)
                )
                sampled = [
                    row[position]
                    for row in rows[:: max(1, len(rows) // value_sample)]
                    if row[position] is not None
                ]
                self._values[(table.name.lower(), column.name.lower())] = (
                    sampled[:value_sample] or [0]
                )
            self._columns[table.name.lower()] = infos

    # -- vocabulary -----------------------------------------------------------
    def _literal_for(self, alias: str, info: _ColumnInfo) -> Literal:
        values = self._values[(info.table.lower(), info.name.lower())]
        value = self.rng.choice(values)
        if info.sql_type is SqlType.BOOLEAN or isinstance(value, bool):
            # booleans compare through their text form on both engines
            return Literal(str(bool(value)))
        return Literal(value)

    def _scope_columns(
        self, refs: Sequence[TableRef], types: Optional[Tuple[SqlType, ...]] = None
    ) -> List[Tuple[str, _ColumnInfo]]:
        out = []
        for ref in refs:
            for info in self._columns[ref.table.lower()]:
                if types is None or info.sql_type in types:
                    out.append((ref.binding, info))
        return out

    # -- FROM clause -----------------------------------------------------------
    def _from_clause(self) -> Tuple[TableRef, List[Join]]:
        tables = self.schema.tables
        base = self.rng.choice(tables)
        alias_counter = 0
        base_ref = TableRef(base.name, f"T{alias_counter}")
        refs = [base_ref]
        joins: List[Join] = []
        for _ in range(self.rng.randint(0, self.max_joins)):
            candidates = []
            for ref in refs:
                for fk in self.schema.foreign_keys:
                    if fk.table.lower() == ref.table.lower():
                        candidates.append((ref, fk, "out"))
                    if fk.ref_table.lower() == ref.table.lower():
                        candidates.append((ref, fk, "in"))
            if not candidates:
                break
            ref, fk, direction = self.rng.choice(candidates)
            alias_counter += 1
            alias = f"T{alias_counter}"
            if direction == "out":
                new_ref = TableRef(fk.ref_table, alias)
                condition = BinaryOp(
                    "=",
                    ColumnRef(fk.column, ref.binding),
                    ColumnRef(fk.ref_column, alias),
                )
            else:
                new_ref = TableRef(fk.table, alias)
                condition = BinaryOp(
                    "=",
                    ColumnRef(fk.ref_column, ref.binding),
                    ColumnRef(fk.column, alias),
                )
            refs.append(new_ref)
            joins.append(Join(JoinKind.INNER, new_ref, condition))
        return base_ref, joins

    # -- predicates -----------------------------------------------------------
    def _predicate(self, refs: Sequence[TableRef], depth: int = 0) -> Expression:
        roll = self.rng.random()
        if depth < 2 and roll < 0.25:
            op = self.rng.choice(("AND", "OR"))
            terms = tuple(
                self._predicate(refs, depth + 1)
                for _ in range(self.rng.randint(2, 3))
            )
            return Conjunction(op, terms)
        if depth < 2 and roll < 0.30:
            return UnaryOp("NOT", self._predicate(refs, depth + 1))
        return self._leaf_predicate(refs)

    def _leaf_predicate(self, refs: Sequence[TableRef]) -> Expression:
        binding, info = self.rng.choice(self._scope_columns(refs))
        kind = self.rng.random()
        column = ColumnRef(info.name, binding)
        if kind < 0.08:
            return IsNullOp(column, negated=self.rng.random() < 0.5)
        if info.sql_type is SqlType.TEXT and kind < 0.30:
            value = self._literal_for(binding, info).value
            text = str(value)
            if len(text) >= 3:
                start = self.rng.randrange(0, max(1, len(text) - 2))
                text = text[start : start + self.rng.randint(2, 5)]
            return LikeOp(
                column,
                Literal(f"%{text}%"),
                case_insensitive=True,  # sqlite's default LIKE == our ILIKE
                negated=self.rng.random() < 0.2,
            )
        if kind < 0.42:
            options = tuple(
                self._literal_for(binding, info)
                for _ in range(self.rng.randint(2, 4))
            )
            return InOp(column, options, None, negated=self.rng.random() < 0.25)
        if info.sql_type in (SqlType.INTEGER, SqlType.REAL) and kind < 0.54:
            low = self._literal_for(binding, info)
            high = self._literal_for(binding, info)
            if isinstance(low.value, (int, float)) and isinstance(
                high.value, (int, float)
            ) and low.value > high.value:
                low, high = high, low
            return BetweenOp(column, low, high, negated=self.rng.random() < 0.2)
        if kind < 0.62 and not info.is_key:
            return self._subquery_predicate(binding, info)
        op = self.rng.choice(_COMPARISONS)
        if info.sql_type in (SqlType.TEXT, SqlType.BOOLEAN):
            op = self.rng.choice(("=", "<>"))
        return BinaryOp(op, column, self._literal_for(binding, info))

    def _subquery_predicate(self, binding: str, info: _ColumnInfo) -> Expression:
        column = ColumnRef(info.name, binding)
        if info.sql_type in (SqlType.INTEGER, SqlType.REAL):
            inner = SelectQuery(
                projections=[
                    SelectItem(
                        FunctionCall(
                            self.rng.choice(("avg", "min", "max")),
                            (ColumnRef(info.name, "S0"),),
                        )
                    )
                ],
                from_table=TableRef(info.table, "S0"),
            )
            op = self.rng.choice((">", "<", ">=", "<="))
            return BinaryOp(op, column, ScalarSubquery(inner))
        inner = SelectQuery(
            projections=[SelectItem(ColumnRef(info.name, "S0"))],
            from_table=TableRef(info.table, "S0"),
            limit=None,
        )
        return InOp(column, None, inner, negated=self.rng.random() < 0.3)

    # -- SELECT cores -----------------------------------------------------------
    def _aggregate_core(self) -> SelectQuery:
        from_table, joins = self._from_clause()
        refs = [from_table] + [join.table for join in joins]
        numerics = self._scope_columns(refs, (SqlType.INTEGER, SqlType.REAL))
        projections: List[SelectItem] = []
        group_by: List[Expression] = []
        having: Optional[Expression] = None
        if self.rng.random() < 0.6:
            binding, info = self.rng.choice(
                self._scope_columns(refs, (SqlType.TEXT,))
                or self._scope_columns(refs)
            )
            key = ColumnRef(info.name, binding)
            group_by.append(key)
            projections.append(SelectItem(key))
        name = self.rng.choice(_AGGREGATES)
        if name == "count":
            binding, info = self.rng.choice(self._scope_columns(refs))
            target = Star() if self.rng.random() < 0.6 else ColumnRef(info.name, binding)
            projections.append(
                SelectItem(
                    FunctionCall(
                        "count",
                        (target,),
                        distinct=not isinstance(target, Star)
                        and self.rng.random() < 0.4,
                    )
                )
            )
        else:
            if not numerics:
                projections.append(SelectItem(FunctionCall("count", (Star(),))))
            else:
                binding, info = self.rng.choice(numerics)
                projections.append(
                    SelectItem(FunctionCall(name, (ColumnRef(info.name, binding),)))
                )
        if group_by and self.rng.random() < 0.4:
            having = BinaryOp(
                self.rng.choice((">", ">=")),
                FunctionCall("count", (Star(),)),
                Literal(self.rng.randint(1, 4)),
            )
        where = (
            self._predicate(refs) if self.rng.random() < 0.6 else None
        )
        return SelectQuery(
            projections=projections,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
        )

    def _plain_core(self) -> SelectQuery:
        from_table, joins = self._from_clause()
        refs = [from_table] + [join.table for join in joins]
        columns = self._scope_columns(refs)
        picked = self.rng.sample(columns, min(len(columns), self.rng.randint(1, 3)))
        projections = [
            SelectItem(ColumnRef(info.name, binding)) for binding, info in picked
        ]
        where = self._predicate(refs) if self.rng.random() < 0.8 else None
        distinct = self.rng.random() < 0.25
        order_by: List[OrderItem] = []
        limit: Optional[int] = None
        offset: Optional[int] = None
        roll = self.rng.random()
        if roll < 0.3:
            binding, info = self.rng.choice(picked)
            order_by.append(
                OrderItem(
                    ColumnRef(info.name, binding),
                    descending=self.rng.random() < 0.5,
                )
            )
        elif roll < 0.65 and not distinct:
            # ORDER BY every binding's full primary key: the sort is a
            # total order over row combinations, so LIMIT/OFFSET pick a
            # deterministic window and stay dialect-safe
            pk_items: Optional[List[OrderItem]] = []
            for ref in refs:
                table = self.schema.table(ref.table)
                if not table.primary_key_columns:
                    pk_items = None
                    break
                pk_items.extend(
                    OrderItem(
                        ColumnRef(column, ref.binding),
                        descending=self.rng.random() < 0.5,
                    )
                    for column in table.primary_key_columns
                )
            if pk_items:
                if self.rng.random() < 0.5:
                    binding, info = self.rng.choice(picked)
                    order_by.append(
                        OrderItem(
                            ColumnRef(info.name, binding),
                            descending=self.rng.random() < 0.5,
                        )
                    )
                order_by.extend(pk_items)
                # LIMIT 0 (occasionally with OFFSET) locks the planner's
                # zero-row short-circuit against the differential suite
                limit = 0 if self.rng.random() < 0.08 else self.rng.randint(1, 12)
                if self.rng.random() < 0.3:
                    offset = self.rng.randint(0, 4)
        return SelectQuery(
            projections=projections,
            from_table=from_table,
            joins=joins,
            where=where,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
            offset=offset,
        )

    def _exists_core(self) -> SelectQuery:
        """A core whose WHERE carries a correlated EXISTS over an FK edge."""
        fks = self.schema.foreign_keys
        if not fks:
            return self._plain_core()
        fk = self.rng.choice(fks)
        outer_ref = TableRef(fk.ref_table, "T0")
        inner = SelectQuery(
            projections=[SelectItem(Literal(1))],
            from_table=TableRef(fk.table, "E0"),
            where=BinaryOp(
                "=",
                ColumnRef(fk.column, "E0"),
                ColumnRef(fk.ref_column, "T0"),
            ),
        )
        outer_columns = [
            SelectItem(ColumnRef(info.name, "T0"))
            for info in self.rng.sample(
                self._columns[fk.ref_table.lower()],
                min(2, len(self._columns[fk.ref_table.lower()])),
            )
        ]
        exists: Expression = ExistsOp(inner)
        if self.rng.random() < 0.3:
            exists = UnaryOp("NOT", exists)
        if self.rng.random() < 0.5:
            exists = Conjunction("AND", (exists, self._predicate([outer_ref])))
        return SelectQuery(
            projections=outer_columns, from_table=outer_ref, where=exists
        )

    def _correlated_in_core(self) -> SelectQuery:
        """A core probing a correlated (NOT) IN subquery over an FK edge.

        Probe and inner projection are restricted to INTEGER/TEXT so
        the comparison semantics are exact on every backend; nullable
        inner columns are deliberately in scope — NOT IN over a
        NULL-bearing subquery is the rewrite's hardest 3VL case.
        """
        fks = self.schema.foreign_keys
        if not fks:
            return self._plain_core()
        fk = self.rng.choice(fks)
        exact = (SqlType.INTEGER, SqlType.TEXT)
        outer_infos = [
            info
            for info in self._columns[fk.ref_table.lower()]
            if info.sql_type in exact
        ]
        inner_infos = [
            info
            for info in self._columns[fk.table.lower()]
            if info.sql_type in exact
        ]
        if not outer_infos:
            return self._plain_core()
        probe_info = self.rng.choice(outer_infos)
        matching = [
            info for info in inner_infos if info.sql_type is probe_info.sql_type
        ]
        if not matching:
            return self._plain_core()
        inner_info = self.rng.choice(matching)
        outer_ref = TableRef(fk.ref_table, "T0")
        inner_ref = TableRef(fk.table, "I0")
        inner_where: Expression = BinaryOp(
            "=", ColumnRef(fk.column, "I0"), ColumnRef(fk.ref_column, "T0")
        )
        if self.rng.random() < 0.4:
            inner_where = Conjunction(
                "AND", (inner_where, self._predicate([inner_ref]))
            )
        probe: Expression = InOp(
            ColumnRef(probe_info.name, "T0"),
            None,
            SelectQuery(
                projections=[SelectItem(ColumnRef(inner_info.name, "I0"))],
                from_table=inner_ref,
                where=inner_where,
            ),
            negated=self.rng.random() < 0.4,
        )
        if self.rng.random() < 0.4:
            probe = Conjunction("AND", (probe, self._predicate([outer_ref])))
        projections = [
            SelectItem(ColumnRef(info.name, "T0"))
            for info in self.rng.sample(
                self._columns[fk.ref_table.lower()],
                min(2, len(self._columns[fk.ref_table.lower()])),
            )
        ]
        return SelectQuery(
            projections=projections, from_table=outer_ref, where=probe
        )

    def _set_operation(self) -> QueryNode:
        """Two same-shape single-column cores under a set operator."""
        types = self.rng.choice(((SqlType.INTEGER,), (SqlType.TEXT,)))

        def one_side(alias: str) -> SelectQuery:
            table = self.rng.choice(self.schema.tables)
            ref = TableRef(table.name, alias)
            eligible = [
                info
                for info in self._columns[table.name.lower()]
                if info.sql_type in types
            ]
            if not eligible:
                eligible = [
                    info
                    for info in self._columns[table.name.lower()]
                    if info.sql_type is SqlType.INTEGER
                ] or list(self._columns[table.name.lower()])
            info = self.rng.choice(eligible)
            where = self._predicate([ref]) if self.rng.random() < 0.6 else None
            return SelectQuery(
                projections=[SelectItem(ColumnRef(info.name, alias))],
                from_table=ref,
                where=where,
            )

        operator = self.rng.choice(
            (
                SetOperator.UNION,
                SetOperator.UNION_ALL,
                SetOperator.INTERSECT,
                SetOperator.EXCEPT,
            )
        )
        return SetOperation(operator, one_side("A0"), one_side("B0"))

    # -- entry points -----------------------------------------------------------
    def query_ast(self) -> QueryNode:
        roll = self.rng.random()
        if roll < 0.36:
            return self._plain_core()
        if roll < 0.62:
            return self._aggregate_core()
        if roll < 0.74:
            return self._exists_core()
        if roll < 0.88:
            return self._correlated_in_core()
        return self._set_operation()

    def query(self) -> str:
        return format_query(self.query_ast())

    def queries(self, count: int) -> List[str]:
        return [self.query() for _ in range(count)]


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------

#: engine configurations every fuzzed query must agree across
ENGINE_CONFIGS: Tuple[Tuple[str, bool], ...] = (
    ("row", False),
    ("row", True),
    ("vectorized", False),
    ("vectorized", True),
)


@dataclass(frozen=True)
class FuzzDivergence:
    sql: str
    detail: str


@dataclass
class FuzzReport:
    """Outcome of one differential fuzz run (seed recorded for repro)."""

    domain: str
    seed: int
    queries: int = 0
    divergences: List[FuzzDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (
            f"fuzz[{self.domain} seed={self.seed}] {self.queries} queries: {status}"
        )


def differential_fuzz(
    database: Database,
    count: int = 100,
    seed: int = 0,
    compare_sqlite: bool = True,
    configs: Sequence[Tuple[str, bool]] = ENGINE_CONFIGS,
    fuzzer: Optional[GrammarQueryFuzzer] = None,
) -> FuzzReport:
    """Fuzz ``database`` with ``count`` queries; compare every backend.

    For each generated query the result multiset must be identical
    across all engine ``(engine_mode, optimize)`` configurations and —
    with ``compare_sqlite`` — equal to stdlib sqlite3's answer on the
    exported data.  Any :class:`EngineError` is a divergence too: the
    grammar only emits queries that are valid by construction.
    """
    fuzzer = fuzzer or GrammarQueryFuzzer(database, seed=seed)
    report = FuzzReport(domain=database.schema.name, seed=seed)
    conn = to_sqlite(database) if compare_sqlite else None
    for _ in range(count):
        sql = fuzzer.query()
        report.queries += 1
        signatures = {}
        failure = None
        for mode, optimize in configs:
            try:
                result = database.execute(sql, engine_mode=mode, optimize=optimize)
                signatures[(mode, optimize)] = result_signature(result)
            except (EngineError, RecursionError) as exc:
                failure = f"engine[{mode},opt={optimize}] raised {exc!r}"
                break
        if failure is None and len(set(signatures.values())) > 1:
            failure = f"engine configs disagree: {sorted(signatures)}"
        if failure is None and conn is not None:
            try:
                lite = result_signature(sqlite_result(conn, sqlite_dialect(sql)))
            except Exception as exc:  # sqlite3 errors carry many types
                failure = f"sqlite raised {exc!r}"
            else:
                first = next(iter(signatures.values()))
                if lite != first:
                    failure = "engine != sqlite3"
        if failure is not None:
            report.divergences.append(FuzzDivergence(sql, failure))
    return report
