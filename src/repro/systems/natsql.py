"""NatSQL-style intermediate representation (IR-coverage ablation).

The paper (Section 2.1) contrasts SemQL with NatSQL: "another widely
used IR with a wider range of supported SQL queries".  Where SemQL
drops FROM/JOIN structure entirely and re-derives it from the FK graph
— failing on data model v1's multi-FK table pairs — NatSQL keeps a
table-instance-aware view of the query, so:

* repeated instances of one table (Figure 4's two ``national_team``
  roles) are representable;
* join conditions are recorded, not re-derived, so multi-FK pairs and
  OR-joins survive the round trip;
* set operations are first-class.

Out-of-grammar constructs remain: LEFT JOIN and CASE are rejected like
in SemQL (neither IR covers them).

This module backs the A4 ablation (bench_ablation_natsql): swapping
ValueNet's IR from SemQL to NatSQL removes the data model v1
post-processing failures, isolating *the IR* as the binding constraint
the v2/v3 redesigns worked around.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.sqlengine import (
    CaseExpr,
    FunctionCall,
    JoinKind,
    QueryNode,
    Schema,
    format_query,
    parse_sql,
)

from .semql import SemqlUnsupportedError


@dataclass
class NatSqlQuery:
    """NatSQL program: a structured, instance-aware clone of the query.

    NatSQL's published form is a clause-aligned token sequence; since
    both ends of our pipeline are ASTs, the faithful equivalent is a
    validated deep copy that records everything SemQL throws away.
    """

    tree: QueryNode

    def to_sql(self) -> str:
        return format_query(self.tree)


REASON_LEFT_JOIN = "left_join"
REASON_EXPRESSION = "unsupported_expression"


def encode_natsql(query: QueryNode, schema: Schema) -> NatSqlQuery:
    """Encode a SQL AST into NatSQL (reject out-of-grammar constructs)."""
    for core in query.iter_selects():
        for join in core.joins:
            if join.kind is not JoinKind.INNER:
                raise SemqlUnsupportedError(REASON_LEFT_JOIN, join.kind.value)
        for expr in core.iter_expressions():
            for node in expr.walk():
                if isinstance(node, CaseExpr):
                    raise SemqlUnsupportedError(
                        REASON_EXPRESSION, "CASE is outside the NatSQL grammar"
                    )
                if isinstance(node, FunctionCall) and node.name == "cast":
                    raise SemqlUnsupportedError(
                        REASON_EXPRESSION, "CAST is outside the NatSQL grammar"
                    )
    return NatSqlQuery(copy.deepcopy(query))


def decode_natsql(program: NatSqlQuery) -> QueryNode:
    """Decode NatSQL back to SQL.

    No join-path inference is needed — the program retains the join
    conditions — which is precisely the coverage difference to SemQL.
    """
    return copy.deepcopy(program.tree)


def natsql_round_trip(sql: str, schema: Schema) -> str:
    """encode → decode → format (raises on out-of-grammar input)."""
    program = encode_natsql(parse_sql(sql), schema)
    return format_query(decode_natsql(program))
