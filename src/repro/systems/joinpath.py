"""FK-graph join-path inference (the SemQL decoding substrate).

IRNet/ValueNet reconstruct the FROM clause of a query from the set of
tables its SemQL tree mentions: they take the schema's PK/FK graph and
connect the mentioned tables along shortest paths.  The algorithm has
the documented limitation the paper exploits (Section 5.1):

    "the shortest path algorithm employed by such systems for
    generating SQL queries only supports a single primary key/foreign
    key reference between any two tables"

so :func:`edge_between` raises :class:`AmbiguousEdgeError` when a table
pair is connected by more than one FK (data model v1's match ↔
national_team and world_cup ↔ national_team pairs), and
:func:`join_path` raises :class:`NoPathError` when mentioned tables are
not connected at all (v1/v2's undeclared bridge-table references).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sqlengine import ForeignKey, Schema


class JoinPathError(Exception):
    """Base class for join-path inference failures."""


class AmbiguousEdgeError(JoinPathError):
    """More than one FK edge between a table pair (the v1 pathology)."""


class NoPathError(JoinPathError):
    """The mentioned tables are not connected in the FK graph."""


@dataclass(frozen=True)
class JoinEdge:
    """One resolved join step: ``left.column = right.column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str


class SchemaGraph:
    """Undirected FK graph over a schema's tables."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._adjacency: Dict[str, Dict[str, List[ForeignKey]]] = {
            table.name.lower(): {} for table in schema.tables
        }
        for fk in schema.foreign_keys:
            source = fk.table.lower()
            target = fk.ref_table.lower()
            self._adjacency[source].setdefault(target, []).append(fk)
            self._adjacency[target].setdefault(source, []).append(fk)

    def neighbors(self, table: str) -> List[str]:
        return sorted(self._adjacency[table.lower()])

    def edges_between(self, table_a: str, table_b: str) -> List[ForeignKey]:
        return list(self._adjacency[table_a.lower()].get(table_b.lower(), ()))

    def edge_between(self, table_a: str, table_b: str) -> JoinEdge:
        """The single FK edge between two tables.

        Raises :class:`AmbiguousEdgeError` on multiple edges and
        :class:`NoPathError` when no edge exists.
        """
        edges = self.edges_between(table_a, table_b)
        if not edges:
            raise NoPathError(f"no FK edge between {table_a!r} and {table_b!r}")
        if len(edges) > 1:
            raise AmbiguousEdgeError(
                f"{len(edges)} FK edges between {table_a!r} and {table_b!r}: "
                + ", ".join(fk.describe() for fk in edges)
            )
        return self._orient(edges[0], table_a)

    @staticmethod
    def _orient(fk: ForeignKey, left_table: str) -> JoinEdge:
        if fk.table.lower() == left_table.lower():
            return JoinEdge(fk.table, fk.column, fk.ref_table, fk.ref_column)
        return JoinEdge(fk.ref_table, fk.ref_column, fk.table, fk.column)

    def shortest_path(self, start: str, goal: str) -> List[str]:
        """BFS table path from ``start`` to ``goal`` (inclusive)."""
        start, goal = start.lower(), goal.lower()
        if start == goal:
            return [start]
        parents: Dict[str, Optional[str]] = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == goal:
                    path = [neighbor]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(neighbor)
        raise NoPathError(f"tables {start!r} and {goal!r} are not connected")

    def join_path(self, tables: Sequence[str]) -> List[JoinEdge]:
        """Connect ``tables`` into one join tree (greedy Steiner).

        Starting from the first table, each remaining table is attached
        via the shortest path to the already-connected set.  Every edge
        on the way is resolved through :meth:`edge_between`, so a
        multi-FK pair anywhere on the path raises — exactly the failure
        the paper describes for data model v1.
        """
        wanted = [table.lower() for table in tables]
        if not wanted:
            return []
        connected: List[str] = [wanted[0]]
        edges: List[JoinEdge] = []
        for table in wanted[1:]:
            if table in connected:
                continue
            path = self._best_path_to_set(table, connected)
            previous = path[0]
            for step in path[1:]:
                if step not in connected:
                    connected.append(step)
                edges.append(self.edge_between(previous, step))
                previous = step
        return edges

    def _best_path_to_set(self, table: str, connected: List[str]) -> List[str]:
        best: Optional[List[str]] = None
        for anchor in connected:
            try:
                path = self.shortest_path(anchor, table)
            except NoPathError:
                continue
            if best is None or len(path) < len(best):
                best = path
        if best is None:
            raise NoPathError(
                f"table {table!r} is not connected to {{{', '.join(connected)}}}"
            )
        return best
