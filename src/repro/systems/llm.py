"""Large-language-model systems: GPT-3.5 and LLaMA2-70B.

Prompted, not fine-tuned (paper Section 6.1): the prompt carries the
schema with PK/FK information and sample rows, plus N few-shot NL/SQL
pairs.  The mechanical difference between the two is the context
window — LLaMA2's 4,096 tokens cannot hold more than ~8 FootballDB
examples, GPT-3.5's 16K holds 30 — plus the calibrated ability gap.

No post-processing: whatever the (simulated) decoder emits is the
prediction, including occasional invalid SQL.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sqlengine import Database

from .base import (
    GoldOracle,
    Prediction,
    SystemSpec,
    TextToSQLSystem,
)
from .competence import CompetenceProfile, build_features
from .corruption import corrupt
from .prompting import PromptBuilder
from .seq2seq import RetrievalIndex, transfer_sketch
from .timing import GPT35_LATENCY, LLAMA2_LATENCY, output_token_estimate


class _PromptedSystem(TextToSQLSystem):
    """Shared behaviour of the two LLM systems."""

    context_window: int
    sample_rows: int
    completion_reserve: int
    latency_model = GPT35_LATENCY
    profile: CompetenceProfile

    def __init__(
        self, database: Database, oracle: Optional[GoldOracle] = None, fold: int = 0
    ) -> None:
        super().__init__(database, oracle, fold)
        self.index = RetrievalIndex()
        self.builder = PromptBuilder(
            database,
            context_window=self.context_window,
            include_foreign_keys=True,
            sample_rows=self.sample_rows,
            completion_reserve=self.completion_reserve,
        )

    def _after_fine_tune(self) -> None:
        # "fine_tune" sets the few-shot pool; nothing is trained.
        self.index.fit(self._train_pairs)

    def predict(self, question: str) -> Prediction:
        prompt = self.builder.build(question, self._train_pairs)
        gold = self.oracle.get(question)
        if gold is None:
            return self._predict_from_retrieval(question, prompt.tokens)
        features = build_features(
            question,
            gold,
            retrieval_similarity=self.index.best_similarity(question),
            train_size=0,
            shots=prompt.shots_used,
        )
        probability = self.profile.probability(
            features, self.schema.version, self.spec.uses_foreign_keys
        )
        success = self._draw(question, "core") < probability
        if success:
            sql = gold
        else:
            seed = hash((self.spec.name, question, self.fold)) & 0x7FFFFFFF
            # LLMs emit the top candidate unfiltered — sometimes invalid.
            sql = corrupt(
                gold, self.schema, seed, beam_width=1, allow_invalid=True
            )[0]
        return self._finish(sql, question)

    def _predict_from_retrieval(self, question: str, prompt_tokens: int) -> Prediction:
        top = self.index.retrieve(question, k=1)
        if not top:
            # Zero-shot with no oracle: a generic schema guess.
            return self._finish("SELECT teamname FROM national_team LIMIT 1", question)
        _, source_question, sketch = top[0]
        return self._finish(transfer_sketch(sketch, source_question, question), question)

    def _finish(self, sql: Optional[str], question: str) -> Prediction:
        tokens = output_token_estimate(sql or "SELECT 1")
        latency = self.latency_model.latency(tokens, f"{self.spec.name}|{question}")
        return Prediction(sql, None if sql else "empty_completion", latency)

    # -- introspection used by the Table 6 harness -----------------------------
    def shots_that_fit(self) -> int:
        return self.builder.max_shots(self._train_pairs)


class GPT35(_PromptedSystem):
    """OpenAI gpt-3.5-turbo (175B-class, cloud-hosted)."""

    spec = SystemSpec(
        name="GPT-3.5",
        scale="large",
        parameters="175B",
        uses_db_schema=True,
        uses_foreign_keys=True,
        uses_db_content=False,
        output_space="SQL",
        query_normalization="String Normalization",
        value_finder=False,
        uses_intermediate_representation=False,
        post_processing="N/A",
        hardware="-",
        gpu_count=0,
    )

    context_window = 16_384
    sample_rows = 3
    completion_reserve = 256
    latency_model = GPT35_LATENCY

    profile = CompetenceProfile(
        base=-1.3,
        shots_curve=0.42,
        shots_decline=0.035,
        retrieval=0.10,
        hardness_penalty=0.30,
        join_penalty=0.08,
        set_penalty=0.35,
        subquery_penalty=0.25,
        grounding_gain=0.55,
        version_adjust={"v1": -0.15, "v2": -0.12, "v3": -0.25},
    )


class Llama2(_PromptedSystem):
    """Meta LLaMA2-70B (8-bit quantized, 4 x A100)."""

    spec = SystemSpec(
        name="LLaMA2-70B",
        scale="large",
        parameters="70B",
        uses_db_schema=True,
        uses_foreign_keys=True,
        uses_db_content=False,
        output_space="SQL",
        query_normalization="String Normalization",
        value_finder=False,
        uses_intermediate_representation=False,
        post_processing="N/A",
        hardware="A100",
        gpu_count=4,
    )

    #: LLaMA2-70B's hard limit (paper footnote 2)
    context_window = 4_096
    sample_rows = 5
    completion_reserve = 512
    latency_model = LLAMA2_LATENCY

    profile = CompetenceProfile(
        base=-4.05,
        shots_curve=0.95,
        shots_decline=0.0,
        retrieval=0.10,
        hardness_penalty=0.35,
        join_penalty=0.10,
        set_penalty=0.45,
        subquery_penalty=0.30,
        grounding_gain=0.45,
        version_adjust={"v1": 0.1, "v2": -0.05, "v3": 0.0},
    )
