"""SemQL intermediate representation (IRNet/ValueNet post-processing).

SemQL "eliminates SQL GROUPBY, HAVING and FROM clauses, and conditions
in WHERE and HAVING are uniformly expressed in the subtree of Filter"
(paper Section 2.1).  Encoding SQL into SemQL is therefore *lossy*:

* FROM/JOIN structure is dropped — decoding re-derives it from the FK
  graph (:mod:`repro.systems.joinpath`), which fails on data model v1's
  multi-FK table pairs;
* a query that instantiates the same table twice (Figure 4's
  ``national_team AS T2`` / ``AS T3``) cannot be represented at all;
* set operations are representable (IRNet's ``Z`` node) but each branch
  must itself be representable;
* GROUP BY is dropped and re-derived with IRNet's heuristic (group by
  the non-aggregated projections);
* non-equi or disjunctive JOIN ON conditions are silently discarded —
  the decoder rebuilds plain FK equi-joins, which is how "executable
  but wrong" predictions arise for OR-join gold queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.sqlengine import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    Schema,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    TableRef,
    UnaryOp,
    is_aggregate_call,
)

from .joinpath import SchemaGraph


class SemqlUnsupportedError(Exception):
    """The SQL construct falls outside the SemQL grammar."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


REASON_REPEATED_TABLE = "repeated_table_instance"
REASON_LEFT_JOIN = "left_join"
REASON_EXPRESSION = "unsupported_expression"
REASON_PROJECTION = "unsupported_projection"


# -- the IR ---------------------------------------------------------------------


@dataclass(frozen=True)
class SemqlColumn:
    table: Optional[str]  # None only for '*'
    column: str  # '*' or a column name


@dataclass(frozen=True)
class SemqlProjection:
    column: SemqlColumn
    agg: Optional[str] = None  # 'count' | 'sum' | 'avg' | 'min' | 'max'
    distinct_agg: bool = False


@dataclass(frozen=True)
class SemqlFilterLeaf:
    op: str  # '=', '<>', '<', '<=', '>', '>=', 'like', 'ilike', 'between', 'in'
    column: SemqlColumn
    agg: Optional[str] = None
    value: object = None  # literal | (low, high) | tuple of literals
    subquery: Optional["SemqlQuery"] = None
    negated: bool = False


@dataclass(frozen=True)
class SemqlFilterGroup:
    connector: str  # 'and' | 'or'
    children: Tuple[object, ...]  # leaves or nested groups


SemqlFilter = Union[SemqlFilterLeaf, SemqlFilterGroup]


@dataclass(frozen=True)
class SemqlOrder:
    column: SemqlColumn
    agg: Optional[str] = None
    descending: bool = False
    expression_hint: Optional[Expression] = None  # ORDER BY arithmetic


@dataclass
class SemqlQuery:
    projections: List[SemqlProjection]
    filter: Optional[SemqlFilter] = None
    orders: List[SemqlOrder] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    #: IRNet 'Z' node: optional set operation with another query
    set_operator: Optional[SetOperator] = None
    set_right: Optional["SemqlQuery"] = None

    def mentioned_tables(self) -> List[str]:
        tables: List[str] = []

        def visit_column(column: SemqlColumn) -> None:
            if column.table and column.table.lower() not in tables:
                tables.append(column.table.lower())

        for projection in self.projections:
            visit_column(projection.column)
        for order in self.orders:
            visit_column(order.column)
        stack: List[object] = [self.filter] if self.filter else []
        while stack:
            node = stack.pop()
            if isinstance(node, SemqlFilterGroup):
                stack.extend(node.children)
            elif isinstance(node, SemqlFilterLeaf):
                visit_column(node.column)
        return tables


# -- encoding: SQL AST -> SemQL -----------------------------------------------------


def encode_sql(query: QueryNode, schema: Schema) -> SemqlQuery:
    """Encode a SQL AST into SemQL, raising when unrepresentable."""
    if isinstance(query, SetOperation):
        left = encode_sql(query.left, schema)
        right = encode_sql(query.right, schema)
        left.set_operator = query.operator
        left.set_right = right
        return left
    return _encode_core(query, schema)


def _encode_core(core: SelectQuery, schema: Schema) -> SemqlQuery:
    alias_to_table = _collect_aliases(core)
    projections = [_encode_projection(item, alias_to_table) for item in core.projections]
    filters: List[SemqlFilter] = []
    if core.where is not None:
        filters.append(_encode_filter(core.where, alias_to_table, schema))
    if core.having is not None:
        filters.append(_encode_filter(core.having, alias_to_table, schema))
    combined: Optional[SemqlFilter] = None
    if len(filters) == 1:
        combined = filters[0]
    elif len(filters) > 1:
        combined = SemqlFilterGroup("and", tuple(filters))
    orders = [_encode_order(item, alias_to_table) for item in core.order_by]
    return SemqlQuery(
        projections=projections,
        filter=combined,
        orders=orders,
        limit=core.limit,
        distinct=core.distinct,
    )


def _collect_aliases(core: SelectQuery) -> dict:
    alias_to_table = {}
    seen_tables = set()
    for ref in core.table_refs:
        table = ref.table.lower()
        if table in seen_tables:
            raise SemqlUnsupportedError(
                REASON_REPEATED_TABLE,
                f"table {ref.table!r} appears more than once",
            )
        seen_tables.add(table)
        alias_to_table[ref.binding.lower()] = ref.table
    for join in core.joins:
        if join.kind is not JoinKind.INNER:
            raise SemqlUnsupportedError(REASON_LEFT_JOIN, join.kind.value)
    return alias_to_table


def _resolve(column: ColumnRef, alias_to_table: dict) -> SemqlColumn:
    if column.table is None:
        return SemqlColumn(None, column.column)
    table = alias_to_table.get(column.table.lower())
    if table is None:
        # Correlated reference into an outer scope: SemQL cannot bind it.
        raise SemqlUnsupportedError(
            REASON_EXPRESSION, f"unresolvable reference {column.qualified}"
        )
    return SemqlColumn(table, column.column)


def _encode_projection(item: SelectItem, alias_to_table: dict) -> SemqlProjection:
    expr = item.expr
    if isinstance(expr, Star):
        return SemqlProjection(SemqlColumn(None, "*"))
    if isinstance(expr, ColumnRef):
        return SemqlProjection(_resolve(expr, alias_to_table))
    if isinstance(expr, FunctionCall) and is_aggregate_call(expr):
        if not expr.args or isinstance(expr.args[0], Star):
            return SemqlProjection(SemqlColumn(None, "*"), agg=expr.name,
                                   distinct_agg=expr.distinct)
        argument = expr.args[0]
        if isinstance(argument, ColumnRef):
            return SemqlProjection(
                _resolve(argument, alias_to_table), agg=expr.name,
                distinct_agg=expr.distinct,
            )
    raise SemqlUnsupportedError(
        REASON_PROJECTION, f"cannot express projection {type(expr).__name__}"
    )


def _encode_order(item: OrderItem, alias_to_table: dict) -> SemqlOrder:
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return SemqlOrder(_resolve(expr, alias_to_table), descending=item.descending)
    if isinstance(expr, FunctionCall) and is_aggregate_call(expr):
        if not expr.args or isinstance(expr.args[0], Star):
            return SemqlOrder(
                SemqlColumn(None, "*"), agg=expr.name, descending=item.descending
            )
        argument = expr.args[0]
        if isinstance(argument, ColumnRef):
            return SemqlOrder(
                _resolve(argument, alias_to_table),
                agg=expr.name,
                descending=item.descending,
            )
    raise SemqlUnsupportedError(
        REASON_EXPRESSION, "ORDER BY expression outside the SemQL grammar"
    )


def _encode_filter(expr: Expression, alias_to_table: dict, schema: Schema) -> SemqlFilter:
    if isinstance(expr, Conjunction):
        children = tuple(
            _encode_filter(term, alias_to_table, schema) for term in expr.terms
        )
        return SemqlFilterGroup(expr.op.lower(), children)
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        inner = _encode_filter(expr.operand, alias_to_table, schema)
        if isinstance(inner, SemqlFilterLeaf):
            return SemqlFilterLeaf(
                inner.op, inner.column, inner.agg, inner.value, inner.subquery,
                negated=not inner.negated,
            )
        raise SemqlUnsupportedError(REASON_EXPRESSION, "NOT over a filter group")
    if isinstance(expr, LikeOp):
        if not isinstance(expr.expr, ColumnRef) or not isinstance(expr.pattern, Literal):
            raise SemqlUnsupportedError(REASON_EXPRESSION, "complex LIKE operands")
        op = "ilike" if expr.case_insensitive else "like"
        return SemqlFilterLeaf(
            op, _resolve(expr.expr, alias_to_table), value=expr.pattern.value,
            negated=expr.negated,
        )
    if isinstance(expr, BetweenOp):
        if not isinstance(expr.expr, ColumnRef):
            raise SemqlUnsupportedError(REASON_EXPRESSION, "complex BETWEEN operand")
        low = _literal_value(expr.low)
        high = _literal_value(expr.high)
        return SemqlFilterLeaf(
            "between", _resolve(expr.expr, alias_to_table), value=(low, high),
            negated=expr.negated,
        )
    if isinstance(expr, InOp):
        if not isinstance(expr.expr, ColumnRef):
            raise SemqlUnsupportedError(REASON_EXPRESSION, "complex IN operand")
        column = _resolve(expr.expr, alias_to_table)
        if expr.subquery is not None:
            return SemqlFilterLeaf(
                "in", column, subquery=encode_sql(expr.subquery, schema),
                negated=expr.negated,
            )
        values = tuple(_literal_value(option) for option in expr.options or ())
        return SemqlFilterLeaf("in", column, value=values, negated=expr.negated)
    if isinstance(expr, IsNullOp):
        if not isinstance(expr.expr, ColumnRef):
            raise SemqlUnsupportedError(REASON_EXPRESSION, "complex IS NULL operand")
        return SemqlFilterLeaf(
            "is_null", _resolve(expr.expr, alias_to_table), negated=expr.negated
        )
    if isinstance(expr, BinaryOp) and expr.op in ("=", "<>", "<", "<=", ">", ">="):
        column_side, value_side = expr.left, expr.right
        flipped = False
        if not _is_column_or_agg(column_side) and _is_column_or_agg(value_side):
            column_side, value_side = value_side, column_side
            flipped = True
        agg, column = _column_with_agg(column_side, alias_to_table)
        op = _flip_op(expr.op) if flipped else expr.op
        if isinstance(value_side, Literal):
            return SemqlFilterLeaf(op, column, agg=agg, value=value_side.value)
        if isinstance(value_side, ScalarSubquery):
            return SemqlFilterLeaf(
                op, column, agg=agg, subquery=encode_sql(value_side.subquery, schema)
            )
        if isinstance(value_side, ColumnRef):
            # Column-to-column predicate (host_winner): keep the raw
            # reference as the value.
            return SemqlFilterLeaf(
                op, column, agg=agg, value=_resolve(value_side, alias_to_table)
            )
        raise SemqlUnsupportedError(REASON_EXPRESSION, "comparison operand")
    raise SemqlUnsupportedError(REASON_EXPRESSION, type(expr).__name__)


def _is_column_or_agg(expr: Expression) -> bool:
    if isinstance(expr, ColumnRef):
        return True
    return isinstance(expr, FunctionCall) and is_aggregate_call(expr)


def _column_with_agg(expr: Expression, alias_to_table: dict):
    if isinstance(expr, ColumnRef):
        return None, _resolve(expr, alias_to_table)
    if isinstance(expr, FunctionCall) and is_aggregate_call(expr):
        if not expr.args or isinstance(expr.args[0], Star):
            return expr.name, SemqlColumn(None, "*")
        if isinstance(expr.args[0], ColumnRef):
            return expr.name, _resolve(expr.args[0], alias_to_table)
    raise SemqlUnsupportedError(REASON_EXPRESSION, "filter left-hand side")


def _literal_value(expr: Expression):
    if isinstance(expr, Literal):
        return expr.value
    raise SemqlUnsupportedError(REASON_EXPRESSION, "expected a literal")


def _flip_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


# -- decoding: SemQL -> SQL AST --------------------------------------------------------


def decode_semql(semql: SemqlQuery, graph: SchemaGraph) -> QueryNode:
    """Decode SemQL back into SQL using FK join-path inference.

    Raises :class:`repro.systems.joinpath.JoinPathError` when the FK
    graph cannot connect the mentioned tables unambiguously — the
    paper's data-model-v1 post-processing failure.
    """
    core = _decode_core(semql, graph)
    if semql.set_operator is not None and semql.set_right is not None:
        right = decode_semql(semql.set_right, graph)
        return SetOperation(semql.set_operator, core, right)
    return core


def _decode_core(semql: SemqlQuery, graph: SchemaGraph) -> SelectQuery:
    tables = semql.mentioned_tables()
    if not tables:
        raise SemqlUnsupportedError(REASON_EXPRESSION, "query mentions no tables")
    edges = graph.join_path(tables)
    ordered_tables: List[str] = [tables[0]]
    for edge in edges:
        for name in (edge.left_table.lower(), edge.right_table.lower()):
            if name not in ordered_tables:
                ordered_tables.append(name)
    aliases = {name: f"T{index + 1}" for index, name in enumerate(ordered_tables)}

    def to_ref(column: SemqlColumn) -> Expression:
        if column.column == "*":
            return Star()
        table = (column.table or ordered_tables[0]).lower()
        return ColumnRef(column.column, aliases.get(table, table))

    projections: List[SelectItem] = []
    group_needed = False
    plain_columns: List[Expression] = []
    for projection in semql.projections:
        expr = to_ref(projection.column)
        if projection.agg is not None:
            expr = FunctionCall(projection.agg, (expr,), projection.distinct_agg)
            group_needed = True
        else:
            if not isinstance(expr, Star):
                plain_columns.append(expr)
        projections.append(SelectItem(expr))

    where_parts: List[Expression] = []
    having_parts: List[Expression] = []
    if semql.filter is not None:
        _decode_filter(semql.filter, to_ref, graph, where_parts, having_parts)

    order_by: List[OrderItem] = []
    order_has_agg = False
    for order in semql.orders:
        expr = to_ref(order.column)
        if order.agg is not None:
            expr = FunctionCall(order.agg, (expr,))
            order_has_agg = True
        order_by.append(OrderItem(expr, order.descending))

    joins = [
        Join(
            JoinKind.INNER,
            TableRef(edge.right_table, aliases[edge.right_table.lower()]),
            BinaryOp(
                "=",
                ColumnRef(edge.left_column, aliases[edge.left_table.lower()]),
                ColumnRef(edge.right_column, aliases[edge.right_table.lower()]),
            ),
        )
        for edge in edges
    ]
    group_by: List[Expression] = []
    if (group_needed or having_parts or order_has_agg) and plain_columns:
        # IRNet heuristic: group by every non-aggregated projection.
        group_by = list(plain_columns)
    return SelectQuery(
        projections=projections,
        from_table=TableRef(ordered_tables[0], aliases[ordered_tables[0]]),
        joins=joins,
        where=_combine(where_parts),
        group_by=group_by,
        having=_combine(having_parts),
        order_by=order_by,
        limit=semql.limit,
        distinct=semql.distinct,
    )


def _decode_filter(
    node: SemqlFilter,
    to_ref,
    graph: SchemaGraph,
    where_parts: List[Expression],
    having_parts: List[Expression],
) -> None:
    if isinstance(node, SemqlFilterGroup):
        if node.connector == "and":
            for child in node.children:
                _decode_filter(child, to_ref, graph, where_parts, having_parts)
            return
        # OR group: decode children into one disjunction (WHERE only).
        child_exprs = []
        for child in node.children:
            sub_where: List[Expression] = []
            sub_having: List[Expression] = []
            _decode_filter(child, to_ref, graph, sub_where, sub_having)
            child_exprs.append(_combine(sub_where + sub_having))
        where_parts.append(Conjunction("OR", tuple(child_exprs)))
        return
    expr = _decode_leaf(node, to_ref, graph)
    if node.agg is not None:
        having_parts.append(expr)
    else:
        where_parts.append(expr)


def _decode_leaf(leaf: SemqlFilterLeaf, to_ref, graph: SchemaGraph) -> Expression:
    column_expr: Expression = to_ref(leaf.column)
    if leaf.agg is not None:
        column_expr = FunctionCall(leaf.agg, (column_expr,))
    if leaf.op in ("like", "ilike"):
        return LikeOp(
            column_expr,
            Literal(leaf.value),
            case_insensitive=leaf.op == "ilike",
            negated=leaf.negated,
        )
    if leaf.op == "between":
        low, high = leaf.value
        return BetweenOp(column_expr, Literal(low), Literal(high), leaf.negated)
    if leaf.op == "in":
        if leaf.subquery is not None:
            return InOp(
                column_expr,
                subquery=decode_semql(leaf.subquery, graph),
                negated=leaf.negated,
            )
        return InOp(
            column_expr,
            options=tuple(Literal(value) for value in leaf.value or ()),
            negated=leaf.negated,
        )
    if leaf.op == "is_null":
        return IsNullOp(column_expr, leaf.negated)
    if leaf.subquery is not None:
        return BinaryOp(
            leaf.op, column_expr, ScalarSubquery(decode_semql(leaf.subquery, graph))
        )
    if isinstance(leaf.value, SemqlColumn):
        return BinaryOp(leaf.op, column_expr, to_ref(leaf.value))
    return BinaryOp(leaf.op, column_expr, Literal(leaf.value))


def _combine(parts: List[Expression]) -> Optional[Expression]:
    parts = [part for part in parts if part is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return Conjunction("AND", tuple(parts))
