"""Analytic inference-latency model (paper Table 7).

We cannot measure V100/A100 wall-clock offline, so latency is computed
from the decoding mechanics each system actually has:

* auto-regressive decoding cost = output tokens × per-token seconds
  (scaled by model size and hardware profile);
* beam search multiplies by the beam width;
* PICARD adds a re-parse cost per rejected beam candidate — this is
  why T5-Picard (652 s) is slower than T5-Picard_Keys (294 s): without
  FK information far more beam candidates fail validation and must be
  re-parsed/re-decoded;
* cloud systems (GPT-3.5) add network/queueing jitter.

All jitter is seeded per question so repeated runs are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import deterministic_uniform


@dataclass(frozen=True)
class HardwareProfile:
    """Throughput scaling for Table 7's hardware column."""

    name: str
    gpu_count: int
    #: relative per-token speed (1.0 = one V100)
    speedup: float


V100 = HardwareProfile("v100", 1, 1.0)
V100_X4 = HardwareProfile("v100", 4, 3.2)
A100_X4 = HardwareProfile("A100", 4, 6.0)
CLOUD = HardwareProfile("-", 0, 1.0)


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic latency for one system family."""

    fixed_seconds: float  # pre/post-processing overhead per query
    per_token_seconds: float  # single-beam decode cost per output token
    beam_width: int = 1
    reparse_seconds: float = 0.0  # PICARD cost per beam re-parse
    jitter_fraction: float = 0.1  # multiplicative spread
    hardware: HardwareProfile = V100

    def latency(
        self,
        output_tokens: int,
        question_key: str,
        reparse_count: int = 0,
    ) -> float:
        decode = (
            output_tokens
            * self.per_token_seconds
            * self.beam_width
            / self.hardware.speedup
            if self.hardware.speedup
            else output_tokens * self.per_token_seconds
        )
        total = self.fixed_seconds + decode + reparse_count * self.reparse_seconds
        # Seeded multiplicative jitter: sum of two uniforms ~ triangular.
        u = deterministic_uniform("latency", question_key) + deterministic_uniform(
            "latency2", question_key
        )
        total *= 1.0 + self.jitter_fraction * (u - 1.0)
        return max(0.01, total)


def output_token_estimate(sql: str) -> int:
    """Output length in tokens (≈4 chars/token, floor of 12)."""
    return max(12, len(sql) // 4)


# Calibrated per-system models (targets: Table 7 mean ± std).
VALUENET_LATENCY = LatencyModel(
    fixed_seconds=0.78, per_token_seconds=0.005, beam_width=1,
    jitter_fraction=0.18, hardware=V100,
)
T5_PICARD_LATENCY = LatencyModel(
    fixed_seconds=35.0, per_token_seconds=1.35, beam_width=8,
    reparse_seconds=16.0, jitter_fraction=0.30, hardware=V100,
)
T5_PICARD_KEYS_LATENCY = LatencyModel(
    fixed_seconds=22.0, per_token_seconds=0.62, beam_width=8,
    reparse_seconds=9.0, jitter_fraction=0.30, hardware=V100,
)
GPT35_LATENCY = LatencyModel(
    fixed_seconds=1.15, per_token_seconds=0.022, beam_width=1,
    jitter_fraction=0.55, hardware=CLOUD,
)
LLAMA2_LATENCY = LatencyModel(
    fixed_seconds=9.0, per_token_seconds=2.6, beam_width=1,
    jitter_fraction=0.55, hardware=A100_X4,
)
