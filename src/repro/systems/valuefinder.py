"""ValueNet's value finder (paper Section 3.2).

ValueNet's headline novelty: extract value candidates from the question
*and* from the database content, "even when not explicitly stated in
the natural language question".  The implementation here does what the
original does in spirit:

* pull 4-digit numbers (years) and quoted spans from the question;
* match capitalized spans against text columns of the database using
  exact, then fuzzy (character-trigram) lookup — fuzzy matching is what
  lets ValueNet recover from the misspelled player names that plague
  the live log, an ability the schema-only systems lack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sqlengine import Database, SqlType

_YEAR_RE = re.compile(r"\b(19[0-9]{2}|20[0-9]{2})\b")
_SPAN_RE = re.compile(r"\b([A-Z][a-zA-Z]+(?:\s+[A-Z][a-zA-Z]+)*)\b")

#: text columns worth scanning for entity values, in priority order
VALUE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("national_team", "teamname"),
    ("player", "full_name"),
    ("player", "player_name"),
    ("club", "club_name"),
    ("coach", "coach_name"),
    ("stadium", "stadium_name"),
    ("league", "name"),
    ("world_cup", "host_country"),
)


@dataclass(frozen=True)
class ValueCandidate:
    """One grounded value: where it matched and how well."""

    span: str  # the question span
    value: object  # the grounded database value (or the span itself)
    table: Optional[str]
    column: Optional[str]
    score: float  # 1.0 = exact, lower = fuzzy


class ValueFinder:
    """Extracts and grounds value candidates for one database."""

    def __init__(self, database: Database, fuzzy_threshold: float = 0.45) -> None:
        # 0.45 accepts genuine one-edit typos ('Germny' ~ 'Germany'
        # scores 0.50) while rejecting unrelated names ('Iran' ~ 'Iraq'
        # scores 0.43) and anything scrambled beyond recognition.
        self.database = database
        self.fuzzy_threshold = fuzzy_threshold
        self._columns = [
            (table, column)
            for table, column in VALUE_COLUMNS
            if database.schema.has_table(table)
            and database.schema.table(table).has_column(column)
        ]
        self._trigram_index: Dict[Tuple[str, str], List[Tuple[str, Set[str]]]] = {}

    # -- public API ---------------------------------------------------------
    def find(self, question: str) -> List[ValueCandidate]:
        candidates: List[ValueCandidate] = []
        for year in _YEAR_RE.findall(question):
            candidates.append(
                ValueCandidate(span=year, value=int(year), table=None, column=None, score=1.0)
            )
        for span in self._entity_spans(question):
            grounded = self.ground(span)
            if grounded is not None:
                candidates.append(grounded)
        return candidates

    def ground(self, span: str) -> Optional[ValueCandidate]:
        """Ground one span against DB content (exact, then fuzzy)."""
        for table, column in self._columns:
            values = self.database.column_values(table, column)
            if span in values:
                return ValueCandidate(span, span, table, column, 1.0)
        best: Optional[ValueCandidate] = None
        span_trigrams = _trigrams(span.lower())
        if not span_trigrams:
            return None
        for table, column in self._columns:
            for value, trigram_set in self._indexed(table, column):
                overlap = len(span_trigrams & trigram_set)
                union = len(span_trigrams | trigram_set)
                score = overlap / union if union else 0.0
                if score >= self.fuzzy_threshold and (
                    best is None or score > best.score
                ):
                    best = ValueCandidate(span, value, table, column, score)
        return best

    # -- internals ------------------------------------------------------------
    def _entity_spans(self, question: str) -> List[str]:
        spans = []
        for match in _SPAN_RE.finditer(question):
            span = match.group(1)
            # Sentence-initial interrogatives are not entities.
            if span.lower() in _STOP_SPANS:
                continue
            spans.append(span)
        return spans

    def _indexed(self, table: str, column: str) -> List[Tuple[str, Set[str]]]:
        key = (table, column)
        if key not in self._trigram_index:
            self._trigram_index[key] = [
                (value, _trigrams(str(value).lower()))
                for value in sorted(
                    self.database.column_values(table, column), key=str
                )
                if isinstance(value, str)
            ]
        return self._trigram_index[key]


_STOP_SPANS = {
    "what", "who", "which", "how", "when", "where", "in", "the", "list",
    "number", "was", "did", "were", "total", "average", "result",
}


def _trigrams(text: str) -> Set[str]:
    padded = f"  {text} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}
