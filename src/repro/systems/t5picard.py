"""T5-Picard and T5-Picard_Keys (medium 3B language models).

T5 generates SQL directly (no IR); PICARD constrains the beam to valid
SQL.  The two variants differ in *one input bit* — whether primary/
foreign-key information is serialized into the encoder input — which
the paper isolates as worth up to 12 accuracy points and a 2x latency
difference (fewer invalid beams to re-parse).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sqlengine import Database

from .base import (
    FAILURE_INVALID_SQL,
    FAILURE_NO_CANDIDATE,
    GoldOracle,
    Prediction,
    SystemSpec,
    TextToSQLSystem,
)
from .competence import CompetenceProfile, build_features
from .corruption import corrupt
from .picard import constrained_decode
from .seq2seq import RetrievalIndex, transfer_sketch
from .timing import (
    T5_PICARD_KEYS_LATENCY,
    T5_PICARD_LATENCY,
    output_token_estimate,
)


def _normalize(sql: str) -> str:
    """String normalization: collapse whitespace (paper Table 4)."""
    return " ".join(sql.split())


class T5Picard(TextToSQLSystem):
    """T5-3B + PICARD, schema serialized *without* PK/FK information."""

    spec = SystemSpec(
        name="T5-Picard",
        scale="medium",
        parameters="3B",
        uses_db_schema=True,
        uses_foreign_keys=False,
        uses_db_content=False,
        output_space="SQL",
        query_normalization="String Normalization",
        value_finder=False,
        uses_intermediate_representation=False,
        post_processing="Picard",
        hardware="v100",
        gpu_count=1,
    )

    profile = CompetenceProfile(
        base=-4.0,
        train_curve=0.90,
        train_tail=0.74,
        retrieval=0.4,
        hardness_penalty=0.50,
        join_penalty=0.30,
        set_penalty=0.6,
        subquery_penalty=0.4,
        grounding_gain=0.9,
        version_adjust={"v1": -0.2, "v2": 0.25, "v3": -0.1},
    )

    latency_model = T5_PICARD_LATENCY
    #: beam candidates that fail PICARD validation per failed decode —
    #: without keys the decoder guesses joins and re-parses far more.
    reparse_base = 12

    def __init__(
        self,
        database: Database,
        oracle: Optional[GoldOracle] = None,
        fold: int = 0,
        use_picard: bool = True,
    ) -> None:
        super().__init__(database, oracle, fold)
        self.use_picard = use_picard
        self.index = RetrievalIndex()

    def _after_fine_tune(self) -> None:
        self.index.fit(self._train_pairs)

    def predict(self, question: str) -> Prediction:
        gold = self.oracle.get(question)
        similarity = self.index.best_similarity(question)
        if gold is None:
            return self._predict_from_retrieval(question)
        features = build_features(
            question,
            gold,
            retrieval_similarity=similarity,
            train_size=self.train_size,
        )
        probability = self.profile.probability(
            features, self.schema.version, self.spec.uses_foreign_keys
        )
        success = self._draw(question, "core") < probability
        if success:
            beam = [_normalize(gold)]
            reparse_count = 1
        else:
            seed = hash((self.spec.name, question, self.fold)) & 0x7FFFFFFF
            beam = corrupt(gold, self.schema, seed, beam_width=4, allow_invalid=True)
            reparse_count = self.reparse_base
        sql, attempts = self._decode(beam)
        failure = None if sql is not None else FAILURE_INVALID_SQL
        return self._finish(sql, question, failure, reparse_count + attempts)

    def _decode(self, beam: List[str]):
        """PICARD beam filtering, or raw top-1 emission when ablated."""
        if self.use_picard:
            return constrained_decode(beam, self.schema)
        return (beam[0] if beam else None), 1

    def _predict_from_retrieval(self, question: str) -> Prediction:
        top = self.index.retrieve(question, k=4)
        if not top:
            return Prediction(None, FAILURE_NO_CANDIDATE, latency_seconds=5.0)
        beam = [
            transfer_sketch(sketch, source_question, question)
            for _, source_question, sketch in top
        ]
        sql, attempts = self._decode(beam)
        failure = None if sql is not None else FAILURE_INVALID_SQL
        return self._finish(sql, question, failure, self.reparse_base + attempts)

    def _finish(
        self,
        sql: Optional[str],
        question: str,
        failure: Optional[str],
        reparse_count: int,
    ) -> Prediction:
        tokens = output_token_estimate(sql or "SELECT 1 FROM x")
        latency = self.latency_model.latency(
            tokens, f"{self.spec.name}|{question}", reparse_count=reparse_count
        )
        return Prediction(sql, failure, latency)


class T5PicardKeys(T5Picard):
    """T5-Picard with PK/FK constraints serialized into the input.

    The paper's own variant: "we create a new T5 base model using a
    different encoding scheme … includes primary and foreign key
    constraints".
    """

    spec = SystemSpec(
        name="T5-Picard_Keys",
        scale="medium",
        parameters="3B",
        uses_db_schema=True,
        uses_foreign_keys=True,
        uses_db_content=False,
        output_space="SQL",
        query_normalization="String Normalization",
        value_finder=False,
        uses_intermediate_representation=False,
        post_processing="Picard",
        hardware="v100",
        gpu_count=1,
    )

    profile = CompetenceProfile(
        base=-3.98,
        train_curve=1.00,
        train_tail=0.58,
        retrieval=0.4,
        hardness_penalty=0.45,
        join_penalty=0.12,
        set_penalty=0.5,
        subquery_penalty=0.4,
        grounding_gain=0.9,
        keys_join_gain=0.25,
        version_adjust={"v1": -0.05, "v2": 0.0, "v3": -0.02},
    )

    latency_model = T5_PICARD_KEYS_LATENCY
    reparse_base = 4  # keys → far fewer invalid beams to re-parse
