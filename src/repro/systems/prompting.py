"""Prompt construction and token budgeting for the LLM systems.

Follows the Text-to-SQL prompt style of Rajkumar et al. / the paper's
Section 6.1: a schema block (optionally with PK/FK lines and sample
rows), few-shot NL/SQL example pairs, then the question.

Token counting is the standard ~4-characters-per-token heuristic; what
matters for the reproduction is the *mechanism*: LLaMA2-70B's 4,096
context cannot fit more than ~8 FootballDB examples (the paper's
footnote 2), while GPT-3.5's 16K window fits 30.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sqlengine import Database, Schema

TrainPair = Tuple[str, str]


def estimate_tokens(text: str) -> int:
    """The usual ≈4 characters/token estimate for English+SQL."""
    return max(1, len(text) // 4)


def serialize_schema(
    schema: Schema,
    include_foreign_keys: bool = True,
    database: Optional[Database] = None,
    sample_rows: int = 0,
) -> str:
    """Render the schema as CREATE TABLE statements (plus FK comments)."""
    lines: List[str] = []
    for table in schema.tables:
        columns = ", ".join(
            f"{column.name} {column.sql_type.value}"
            + (" primary key" if column.primary_key else "")
            for column in table.columns
        )
        lines.append(f"CREATE TABLE {table.name} ({columns});")
        if database is not None and sample_rows > 0:
            for row in database.sample_rows(table.name, sample_rows):
                rendered = ", ".join(repr(value) for value in row[:6])
                lines.append(f"-- e.g. ({rendered}, ...)")
    if include_foreign_keys:
        for fk in schema.foreign_keys:
            lines.append(f"-- FK: {fk.describe()}")
    return "\n".join(lines)


@dataclass(frozen=True)
class Prompt:
    """An assembled prompt plus its bookkeeping."""

    text: str
    shots_used: int
    shots_requested: int
    tokens: int

    @property
    def truncated(self) -> bool:
        return self.shots_used < self.shots_requested


class PromptBuilder:
    """Builds few-shot prompts under a hard context-window budget."""

    def __init__(
        self,
        database: Database,
        context_window: int,
        include_foreign_keys: bool = True,
        sample_rows: int = 2,
        completion_reserve: int = 256,
    ) -> None:
        self.database = database
        self.context_window = context_window
        self.completion_reserve = completion_reserve
        self._schema_block = serialize_schema(
            database.schema,
            include_foreign_keys=include_foreign_keys,
            database=database,
            sample_rows=sample_rows,
        )

    def build(self, question: str, examples: Sequence[TrainPair]) -> Prompt:
        """Assemble the prompt, dropping examples that do not fit.

        Examples are dropped from the *end* (the least similar ones when
        the caller pre-sorts by relevance), reproducing how the paper
        capped LLaMA2 at 8 shots.
        """
        header = (
            "You are a Text-to-SQL assistant. Given the database schema, "
            "answer each question with a single SQL query.\n\n"
            + self._schema_block
            + "\n"
        )
        question_block = f"\n-- Question: {question}\nSQL:"
        budget = self.context_window - self.completion_reserve
        used = estimate_tokens(header) + estimate_tokens(question_block)
        example_blocks: List[str] = []
        for example_question, example_sql in examples:
            block = f"\n-- Question: {example_question}\nSQL: {example_sql}\n"
            cost = estimate_tokens(block)
            if used + cost > budget:
                break
            example_blocks.append(block)
            used += cost
        text = header + "".join(example_blocks) + question_block
        return Prompt(
            text=text,
            shots_used=len(example_blocks),
            shots_requested=len(examples),
            tokens=estimate_tokens(text),
        )

    def max_shots(self, examples: Sequence[TrainPair]) -> int:
        """How many of ``examples`` fit (used by the Table 6 harness)."""
        return self.build("placeholder question?", examples).shots_used
