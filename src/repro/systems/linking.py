"""Schema linking: connecting question tokens to schema elements.

IRNet-style input enrichment (paper Section 2.1): question n-grams are
matched against table names, column names and — when the system has DB
content access — cell values.  The result is used by the ValueNet
pipeline to decide which tables a question mentions and by the value
finder to ground literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.nlp.embedding import tokenize
from repro.sqlengine import Database, Schema


@dataclass(frozen=True)
class SchemaLink:
    """One question-span ↔ schema-element link."""

    span: str
    kind: str  # 'table' | 'column'
    table: str
    column: Optional[str] = None


#: question words that suggest a table without naming it (domain lexicon)
_TABLE_HINTS: Dict[str, Tuple[str, ...]] = {
    "match": ("match", "game", "score", "played", "against", "vs"),
    "plays_match": ("match", "game", "score", "played", "against", "vs"),
    "plays_as_home": ("home",),
    "plays_as_away": ("away",),
    "world_cup": ("cup", "world", "tournament", "host", "hosted"),
    "world_cup_result": ("won", "winner", "champion", "title", "second",
                         "runner", "third", "fourth", "final"),
    "national_team": ("team", "country", "national", "squad"),
    "player": ("player", "scorer", "tall", "tallest", "height", "position"),
    "player_fact": ("scored", "goals", "scorer", "squad", "played"),
    "match_fact": ("card", "cards", "penalty", "penalties", "goal", "goals",
                   "scored", "minute"),
    "coach": ("coach", "coached", "manager", "managed"),
    "club": ("club", "clubs"),
    "league": ("league", "division"),
    "stadium": ("stadium", "arena", "venue"),
    "player_club_team": ("club", "clubs", "played"),
    "coach_club_team": ("coach", "club"),
    "club_league_hist": ("league", "club"),
}


def link_schema(question: str, schema: Schema) -> List[SchemaLink]:
    """Link question tokens to tables and columns of ``schema``."""
    tokens = set(tokenize(question))
    links: List[SchemaLink] = []
    for table in schema.tables:
        table_lower = table.name.lower()
        name_parts = set(table_lower.split("_"))
        hinted = tokens & set(_TABLE_HINTS.get(table_lower, ()))
        named = tokens & name_parts if len(name_parts & tokens) == len(name_parts) else set()
        if hinted or named:
            links.append(SchemaLink(span=" ".join(sorted(hinted or named)),
                                    kind="table", table=table.name))
        for column in table.columns:
            column_parts = column.name.lower().split("_")
            if all(part in tokens for part in column_parts if part not in ("id",)):
                meaningful = [part for part in column_parts if part != "id"]
                if meaningful:
                    links.append(
                        SchemaLink(
                            span=" ".join(meaningful),
                            kind="column",
                            table=table.name,
                            column=column.name,
                        )
                    )
    return links


def linked_tables(question: str, schema: Schema) -> List[str]:
    """Table names the question plausibly refers to (deduplicated)."""
    ordered: List[str] = []
    for link in link_schema(question, schema):
        if link.table not in ordered:
            ordered.append(link.table)
    return ordered
