"""PICARD: parsing incrementally for constrained auto-regressive decoding.

Scholak et al. (EMNLP 2021) constrain an LM's decoder so that every
emitted token keeps the output a prefix of *valid* SQL.  This module
provides the two pieces our simulated T5 systems use:

* :func:`validate_sql` — full lexical + grammatical + schema validation
  of a complete candidate (tables exist, columns resolve under their
  aliases/scopes, subqueries included);
* :class:`IncrementalParser` — token-prefix feasibility checking, the
  beam-filtering primitive of the original;
* :func:`constrained_decode` — pick the first candidate from a beam
  that survives validation (or reject all).

The measurable effect, as in the paper: Picard systems never emit
unparseable or schema-inconsistent SQL; their wrong answers are wrong
*executable* queries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sqlengine import (
    ColumnRef,
    EngineError,
    ParseError,
    QueryNode,
    Schema,
    SelectQuery,
    Star,
    TokenizeError,
    iter_subqueries,
    parse_sql,
    tokenize,
)
from repro.sqlengine.parser import Parser


def validate_sql(sql: str, schema: Schema) -> List[str]:
    """All validation errors for ``sql`` against ``schema`` (empty = valid)."""
    try:
        query = parse_sql(sql)
    except (ParseError, TokenizeError) as exc:
        return [f"parse: {exc}"]
    errors: List[str] = []
    _validate_query(query, schema, outer_bindings=[], errors=errors)
    return errors


def is_valid_sql(sql: str, schema: Schema) -> bool:
    return not validate_sql(sql, schema)


def _validate_query(
    query: QueryNode,
    schema: Schema,
    outer_bindings: List[dict],
    errors: List[str],
) -> None:
    for core in query.iter_selects():
        bindings = {}
        for ref in core.table_refs:
            if not schema.has_table(ref.table):
                errors.append(f"unknown table {ref.table!r}")
                continue
            bindings[ref.binding.lower()] = schema.table(ref.table)
        scope_chain = [bindings] + outer_bindings
        for expr in core.iter_expressions():
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    _validate_column(node, scope_chain, errors)
                elif isinstance(node, Star) and node.table is not None:
                    if not any(node.table.lower() in scope for scope in scope_chain):
                        errors.append(f"unknown alias {node.table!r} in star")
        for sub in iter_subqueries(core):
            _validate_query(sub, schema, scope_chain, errors)


def _validate_column(ref: ColumnRef, scope_chain: List[dict], errors: List[str]) -> None:
    if ref.table is not None:
        for scope in scope_chain:
            table = scope.get(ref.table.lower())
            if table is not None:
                if not table.has_column(ref.column):
                    errors.append(
                        f"table {table.name!r} has no column {ref.column!r}"
                    )
                return
        errors.append(f"unknown table alias {ref.table!r}")
        return
    for scope in scope_chain:
        matches = [t for t in scope.values() if t.has_column(ref.column)]
        if len(matches) == 1:
            return
        if len(matches) > 1:
            errors.append(f"ambiguous column {ref.column!r}")
            return
    errors.append(f"unknown column {ref.column!r}")


class IncrementalParser:
    """Token-prefix feasibility checking (the PICARD primitive).

    ``feasible(prefix)`` reports whether ``prefix`` can be extended to a
    complete, parseable SQL statement.  Implemented by attempting a full
    parse of the prefix and distinguishing "failed because input ended"
    (feasible) from "failed on an inner token" (infeasible).
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def feasible(self, prefix: str) -> bool:
        if not prefix.strip():
            return True
        try:
            tokens = tokenize(prefix)
        except TokenizeError:
            return False
        try:
            Parser(tokens).parse_statement()
            return True  # already complete
        except ParseError as exc:
            # Position == the EOF token index means the parser *wanted
            # more input*: the prefix is extendable, hence feasible.
            return exc.position >= len(tokens) - 1

    def first_infeasible_token(self, sql: str) -> Optional[int]:
        """Index of the first token that makes the prefix infeasible."""
        try:
            tokens = tokenize(sql)
        except TokenizeError:
            return 0
        words = [token.value for token in tokens[:-1]]
        for end in range(1, len(words) + 1):
            if not self.feasible(" ".join(words[:end])):
                return end - 1
        return None


def constrained_decode(
    candidates: Sequence[str], schema: Schema
) -> Tuple[Optional[str], int]:
    """Beam filtering: first candidate that validates, plus tries used.

    Returns ``(sql, attempts)``; ``sql`` is ``None`` when every beam
    entry was rejected.  ``attempts`` feeds the latency model — Picard's
    re-parsing is the dominant cost of the T5 systems in Table 7.
    """
    for attempt, candidate in enumerate(candidates, start=1):
        if is_valid_sql(candidate, schema):
            return candidate, attempt
    return None, len(candidates)
