"""Text-to-SQL system interface and metadata (paper Table 4).

Every evaluated system implements :class:`TextToSQLSystem`:

* ``fine_tune(pairs)`` — consume (question, SQL) training pairs (for
  LLM systems this sets the few-shot example pool instead);
* ``predict(question)`` — produce a :class:`Prediction`.

The *simulation seam* (DESIGN.md §5): systems own a
:class:`GoldOracle` mapping benchmark questions to the SQL a fully
competent language model would decode.  A calibrated competence model
decides per question whether the simulated LM core reaches that decode;
pre-/post-processing around the core is real code and can veto, repair
or distort the result — which is where the paper's data-model effects
come from.  For questions outside the oracle (true deployment input),
systems fall back to pure retrieval + value adaptation.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sqlengine import Database


@dataclass(frozen=True)
class SystemSpec:
    """One column of the paper's Table 4."""

    name: str
    scale: str  # 'small' | 'medium' | 'large'
    parameters: str  # e.g. '148M', '3B', '175B'
    uses_db_schema: bool
    uses_foreign_keys: bool
    uses_db_content: bool
    output_space: str  # 'IR' | 'SQL'
    query_normalization: str  # 'SQL-Parser' | 'String Normalization'
    value_finder: bool
    uses_intermediate_representation: bool
    post_processing: str  # 'IR to SQL' | 'Picard' | 'N/A'
    hardware: str  # Table 7: 'v100', 'A100', '-' (cloud)
    gpu_count: int

    def table4_row(self) -> Dict[str, str]:
        return {
            "Scale (#Params)": f"{self.scale} ({self.parameters})",
            "DB Schema w/ FK": (
                ("Yes (with)" if self.uses_foreign_keys else "Yes (without)")
                if self.uses_db_schema
                else "No"
            ),
            "DB Content": "Yes" if self.uses_db_content else "No",
            "Output Specification": self.output_space,
            "Query Normalization": self.query_normalization,
            "Value Finder": "Yes" if self.value_finder else "No",
            "Conversion to IR": "Yes" if self.uses_intermediate_representation else "No",
            "Post-processing": self.post_processing,
        }


@dataclass(frozen=True)
class Prediction:
    """Output of one Text-to-SQL call."""

    sql: Optional[str]
    failure: Optional[str] = None  # machine-readable reason when sql is None
    latency_seconds: float = 0.0
    notes: Tuple[str, ...] = ()  # pipeline trace (debugging/ablation)

    @property
    def produced_sql(self) -> bool:
        return self.sql is not None


# failure reason codes
FAILURE_PREPROCESSING = "preprocessing_rejected"
FAILURE_IR_UNSUPPORTED = "ir_unsupported"
FAILURE_JOIN_PATH = "join_path_ambiguous"
FAILURE_NO_CANDIDATE = "no_candidate"
FAILURE_INVALID_SQL = "invalid_sql"


TrainPair = Tuple[str, str]  # (question, gold SQL in this system's data model)


class GoldOracle:
    """question -> the SQL a fully competent LM would decode.

    This is the declared simulation stand-in for the neural decoder; it
    is *not* consulted for correctness directly — the competence model
    gates access, and the surrounding pipeline may still break or bend
    the decode.
    """

    def __init__(self, lookup: Optional[Dict[str, str]] = None) -> None:
        self._lookup = dict(lookup or {})

    def get(self, question: str) -> Optional[str]:
        return self._lookup.get(question)

    def __len__(self) -> int:
        return len(self._lookup)


def question_hash(question: str) -> int:
    digest = hashlib.blake2s(question.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def deterministic_uniform(*parts: object) -> float:
    """A uniform [0,1) draw fully determined by its identifiers.

    The same (system, question, fold) triple always maps to the same
    draw, so accuracy curves are monotone in the competence probability
    (larger train sets can only flip questions from wrong to right).
    """
    key = "|".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.blake2s(key, digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


class TextToSQLSystem(abc.ABC):
    """Base class for the five evaluated systems."""

    spec: SystemSpec

    def __init__(
        self,
        database: Database,
        oracle: Optional[GoldOracle] = None,
        fold: int = 0,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.oracle = oracle or GoldOracle()
        self.fold = fold
        self._train_pairs: List[TrainPair] = []

    # -- training -----------------------------------------------------------
    def fine_tune(self, pairs: Sequence[TrainPair]) -> None:
        """Consume training pairs (few-shot pool for LLM systems)."""
        self._train_pairs = list(pairs)
        self._after_fine_tune()

    def _after_fine_tune(self) -> None:
        """Hook for subclasses (index building, prompt assembly, …)."""

    @property
    def train_size(self) -> int:
        return len(self._train_pairs)

    # -- prediction -----------------------------------------------------------
    @abc.abstractmethod
    def predict(self, question: str) -> Prediction:
        """Translate ``question`` into SQL for this system's database."""

    # -- shared helpers -----------------------------------------------------------
    def _draw(self, question: str, *extra: object) -> float:
        return deterministic_uniform(
            self.spec.name, question_hash(question), self.fold, *extra
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(train={self.train_size}, "
            f"model={self.schema.version})"
        )
