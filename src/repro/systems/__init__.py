"""The five evaluated Text-to-SQL systems plus their shared machinery.

System inventory (paper Table 4):

========================  ======  =========  ===========================
System                    scale   params     distinguishing machinery
========================  ======  =========  ===========================
:class:`ValueNet`         small   148M       SemQL IR, value finder,
                                             Spider-parser preprocessing
:class:`T5Picard`         medium  3B         PICARD constrained decoding,
                                             schema *without* PK/FK
:class:`T5PicardKeys`     medium  3B         PICARD + PK/FK serialization
:class:`GPT35`            large   175B       few-shot prompts, 16K window
:class:`Llama2`           large   70B        few-shot prompts, 4K window
========================  ======  =========  ===========================
"""

from .base import (
    FAILURE_INVALID_SQL,
    FAILURE_IR_UNSUPPORTED,
    FAILURE_JOIN_PATH,
    FAILURE_NO_CANDIDATE,
    FAILURE_PREPROCESSING,
    GoldOracle,
    Prediction,
    SystemSpec,
    TextToSQLSystem,
    TrainPair,
    deterministic_uniform,
    question_hash,
)
from .competence import (
    CompetenceFeatures,
    CompetenceProfile,
    build_features,
    fuzzy_grounding_fraction,
    grounding_fraction,
)
from .corruption import corrupt
from .joinpath import (
    AmbiguousEdgeError,
    JoinEdge,
    JoinPathError,
    NoPathError,
    SchemaGraph,
)
from .linking import SchemaLink, link_schema, linked_tables
from .llm import GPT35, Llama2
from .picard import IncrementalParser, constrained_decode, is_valid_sql, validate_sql
from .prompting import Prompt, PromptBuilder, estimate_tokens, serialize_schema
from .semql import (
    SemqlQuery,
    SemqlUnsupportedError,
    decode_semql,
    encode_sql,
)
from .natsql import NatSqlQuery, decode_natsql, encode_natsql, natsql_round_trip
from .seq2seq import RetrievalIndex, transfer_sketch
from .t5picard import T5Picard, T5PicardKeys
from .valuenet_natsql import ValueNetNatSQL
from .timing import LatencyModel, output_token_estimate
from .valuefinder import ValueCandidate, ValueFinder
from .valuenet import ValueNet

#: construction order used throughout the evaluation harness
ALL_SYSTEMS = (ValueNet, T5Picard, T5PicardKeys, GPT35, Llama2)

FINE_TUNED_SYSTEMS = (ValueNet, T5Picard, T5PicardKeys)
LLM_SYSTEMS = (GPT35, Llama2)

__all__ = [
    "ALL_SYSTEMS",
    "AmbiguousEdgeError",
    "CompetenceFeatures",
    "CompetenceProfile",
    "FAILURE_INVALID_SQL",
    "FAILURE_IR_UNSUPPORTED",
    "FAILURE_JOIN_PATH",
    "FAILURE_NO_CANDIDATE",
    "FAILURE_PREPROCESSING",
    "FINE_TUNED_SYSTEMS",
    "GPT35",
    "GoldOracle",
    "IncrementalParser",
    "JoinEdge",
    "JoinPathError",
    "LLM_SYSTEMS",
    "LatencyModel",
    "Llama2",
    "NatSqlQuery",
    "NoPathError",
    "Prediction",
    "Prompt",
    "PromptBuilder",
    "RetrievalIndex",
    "SchemaGraph",
    "SchemaLink",
    "SemqlQuery",
    "SemqlUnsupportedError",
    "SystemSpec",
    "T5Picard",
    "T5PicardKeys",
    "TextToSQLSystem",
    "TrainPair",
    "ValueCandidate",
    "ValueFinder",
    "ValueNet",
    "ValueNetNatSQL",
    "build_features",
    "constrained_decode",
    "corrupt",
    "decode_natsql",
    "decode_semql",
    "deterministic_uniform",
    "encode_natsql",
    "encode_sql",
    "estimate_tokens",
    "fuzzy_grounding_fraction",
    "grounding_fraction",
    "is_valid_sql",
    "link_schema",
    "linked_tables",
    "natsql_round_trip",
    "output_token_estimate",
    "question_hash",
    "serialize_schema",
    "transfer_sketch",
    "validate_sql",
]
