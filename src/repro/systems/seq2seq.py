"""The retrieval-augmented simulated seq2seq core.

Shared machinery of ValueNet and the T5 systems:

* a real retrieval index over the fine-tuning pairs (hashed-n-gram
  embeddings);
* a *sketch transfer* fallback for questions outside the gold oracle:
  take the most similar training question's SQL and adapt its values to
  the new question (years and entity spans);
* the competence gate deciding whether the simulated decoder reaches
  the oracle decode, with the retrieval similarity as a live feature.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.nlp.embedding import cosine, embed, embed_all

TrainPair = Tuple[str, str]

_YEAR_RE = re.compile(r"\b(19[0-9]{2}|20[0-9]{2})\b")
_ENTITY_RE = re.compile(r"\b([A-Z][a-zA-Z]+(?:\s+[A-Z][a-zA-Z]+)*)\b")
_LIKE_LITERAL_RE = re.compile(r"'%([^%']+)%'")

_STOP_SPANS = frozenset(
    {"what", "who", "which", "how", "when", "where", "in", "the", "list",
     "number", "was", "did", "were", "total", "average", "result", "sql"}
)


class RetrievalIndex:
    """Nearest-neighbour index over training questions."""

    def __init__(self) -> None:
        self._pairs: List[TrainPair] = []
        self._vectors: List[List[float]] = []

    def fit(self, pairs: Sequence[TrainPair]) -> None:
        self._pairs = list(pairs)
        self._vectors = embed_all([question for question, _ in pairs])

    def __len__(self) -> int:
        return len(self._pairs)

    def retrieve(self, question: str, k: int = 1) -> List[Tuple[float, str, str]]:
        """Top-k (similarity, question, sql), best first."""
        if not self._pairs:
            return []
        vector = embed(question)
        scored = [
            (cosine(vector, candidate), index)
            for index, candidate in enumerate(self._vectors)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            (score, self._pairs[index][0], self._pairs[index][1])
            for score, index in scored[:k]
        ]

    def best_similarity(self, question: str) -> float:
        top = self.retrieve(question, k=1)
        return top[0][0] if top else 0.0

    def ranked_examples(self, question: str, k: int) -> List[TrainPair]:
        """Most-similar-first examples (LLM shot selection)."""
        return [(q, sql) for _, q, sql in self.retrieve(question, k=k)]


def transfer_sketch(sketch_sql: str, source_question: str, target_question: str) -> str:
    """Adapt a retrieved SQL sketch to a new question's values.

    Pure value substitution (no structural edits): years and entity
    spans found in the target question replace the sketch's year and
    ``ILIKE '%…%'`` literals, positionally.  This is the honest fallback
    for questions outside the oracle — it produces the right SQL exactly
    when the retrieved sketch has the right structure and only values
    differ (e.g. "score between A and B in YEAR" templates).
    """
    adapted = sketch_sql
    target_years = _YEAR_RE.findall(target_question)
    if target_years:
        years = iter(target_years)

        def swap_year(match: re.Match) -> str:
            try:
                return next(years)
            except StopIteration:
                return match.group(0)

        adapted = _YEAR_RE.sub(swap_year, adapted)
    target_entities = [
        span
        for span in _ENTITY_RE.findall(target_question)
        if span.lower() not in _STOP_SPANS
    ]
    if target_entities:
        entities = iter(target_entities)

        def swap_entity(match: re.Match) -> str:
            try:
                return f"'%{next(entities)}%'"
            except StopIteration:
                return match.group(0)

        adapted = _LIKE_LITERAL_RE.sub(swap_entity, adapted)
    return adapted
