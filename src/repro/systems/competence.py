"""Calibrated competence model for the simulated LM cores.

This is the honest simulation seam (DESIGN.md §2/§5): offline we cannot
run BART/T5/GPT/LLaMA weights, so whether the "neural" part of a system
produces the right decode is decided by a logistic model over features
that the real models demonstrably respond to (training data volume,
retrieval similarity, query hardness, join/set structure, PK/FK input,
value grounding).  Everything *around* this seam — schema linking,
SemQL, join-path inference, PICARD, prompts, token budgets — is real
code whose failures are mechanistic.

The per-system coefficients are calibrated so the harness reproduces
the paper's Tables 5 and 6 (see EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import analyze_query, classify_hardness
from repro.nlp.embedding import tokenize


@dataclass(frozen=True)
class CompetenceFeatures:
    """Per-question inputs to the competence model."""

    hardness: int  # 1..4 (of this data model's gold)
    joins: int
    has_set_operation: bool
    subqueries: int
    grounding: float  # fraction of gold literals grounded in the question
    retrieval_similarity: float  # max cosine to the training questions
    train_size: int  # fine-tuning pairs (0 for zero-shot)
    shots: int  # few-shot examples in the prompt (LLMs)


@dataclass(frozen=True)
class CompetenceProfile:
    """Logistic-regression coefficients for one system."""

    base: float
    #: fast learning phase: x log1p(min(n, 100) / 10) — the paper's big
    #: 0→100 jump
    train_curve: float = 0.0
    #: slow tail: x log1p(max(0, n - 100) / 100) — the 100→300 increments
    train_tail: float = 0.0
    retrieval: float = 0.0  # x retrieval_similarity
    shots_curve: float = 0.0  # x log1p(shots)
    shots_decline: float = 0.0  # x max(0, shots - 10): long-prompt drift
    hardness_penalty: float = 0.0  # x (hardness - 1)
    join_penalty: float = 0.0  # x max(0, joins - 1)
    set_penalty: float = 0.0  # if a set operation is required
    subquery_penalty: float = 0.0  # x subqueries
    grounding_gain: float = 0.0  # x grounding
    keys_join_gain: float = 0.0  # x min(joins, 3) when FKs are in the input
    version_adjust: Dict[str, float] = field(default_factory=dict)

    def probability(
        self, features: CompetenceFeatures, version: str, uses_foreign_keys: bool
    ) -> float:
        logit = self.base
        logit += self.train_curve * math.log1p(min(features.train_size, 100) / 10.0)
        # The tail saturates around ~500 samples: the paper's extension
        # experiment (tripling 300 -> ~900 samples buys only ~4 points)
        # shows fine-tuning returns flatten well before 1K.
        tail_size = min(max(0, features.train_size - 100), 400)
        logit += self.train_tail * math.log1p(tail_size / 100.0)
        logit += self.retrieval * features.retrieval_similarity
        logit += self.shots_curve * math.log1p(features.shots)
        logit -= self.shots_decline * max(0, features.shots - 10)
        logit -= self.hardness_penalty * (features.hardness - 1)
        logit -= self.join_penalty * max(0, features.joins - 1)
        if features.has_set_operation:
            logit -= self.set_penalty
        logit -= self.subquery_penalty * features.subqueries
        logit += self.grounding_gain * features.grounding
        if uses_foreign_keys:
            logit += self.keys_join_gain * min(features.joins, 3)
        # Morphed data models ("v1~m3") inherit their base model's
        # calibrated adjustment: the morph's *structural* effects (joins,
        # FKs, grounding) already flow through the features above, while
        # the residual version term captures what was fitted to the
        # paper's measurements for the base schema family.
        base_version = version.split("~", 1)[0]
        logit += self.version_adjust.get(
            version, self.version_adjust.get(base_version, 0.0)
        )
        return 1.0 / (1.0 + math.exp(-logit))


def grounding_fraction(question: str, gold_sql: str) -> float:
    """Fraction of the gold query's literals present in the question.

    Captures the paper's lexical-gap effect: v2's ``prize = 'runner_up'``
    literal is ungrounded when users write "second place", while v3's
    Boolean ``winner = 'True'`` carries no content literal at all.
    """
    question_tokens = set(tokenize(question))
    import re

    literals = re.findall(r"'([^']*)'", gold_sql)
    content_words: List[str] = []
    for literal in literals:
        text = literal.strip("%").strip()
        if text.lower() in ("true", "false", ""):
            continue  # boolean flags are schema-level, always "grounded"
        content_words.extend(tokenize(text))
    years = re.findall(r"\b(19[0-9]{2}|20[0-9]{2})\b", gold_sql)
    content_words.extend(years)
    if not content_words:
        return 1.0
    grounded = sum(1 for word in content_words if word in question_tokens)
    return grounded / len(content_words)


def fuzzy_grounding_fraction(question: str, gold_sql: str) -> float:
    """Grounding with typo tolerance (ValueNet's value-finder advantage).

    A literal word also counts as grounded when some question token is
    within small edit distance of it — the trigram-backed recovery that
    DB-content systems get and schema-only systems do not.
    """
    import re

    question_tokens = list(tokenize(question))
    question_set = set(question_tokens)
    literals = re.findall(r"'([^']*)'", gold_sql)
    content_words: List[str] = []
    for literal in literals:
        text = literal.strip("%").strip()
        if text.lower() in ("true", "false", ""):
            continue
        content_words.extend(tokenize(text))
    years = re.findall(r"\b(19[0-9]{2}|20[0-9]{2})\b", gold_sql)
    content_words.extend(years)
    if not content_words:
        return 1.0
    grounded = 0
    for word in content_words:
        if word in question_set or any(
            _close_enough(word, token) for token in question_tokens
        ):
            grounded += 1
    return grounded / len(content_words)


def _close_enough(word: str, token: str) -> bool:
    """Cheap edit-distance-1-ish test (length 5+, shared prefix+suffix)."""
    if len(word) < 5 or abs(len(word) - len(token)) > 1:
        return False
    return word[:2] == token[:2] and word[-2:] == token[-2:]


def build_features(
    question: str,
    gold_sql: str,
    retrieval_similarity: float,
    train_size: int,
    shots: int = 0,
    grounding_override: Optional[float] = None,
) -> CompetenceFeatures:
    """Assemble :class:`CompetenceFeatures` from real measurements."""
    characteristics = analyze_query(gold_sql)
    return CompetenceFeatures(
        hardness=classify_hardness(gold_sql).numeric,
        joins=characteristics.joins,
        has_set_operation=characteristics.set_operations > 0,
        subqueries=characteristics.subqueries,
        grounding=(
            grounding_override
            if grounding_override is not None
            else grounding_fraction(question, gold_sql)
        ),
        retrieval_similarity=retrieval_similarity,
        train_size=train_size,
        shots=shots,
    )
