"""Mechanistic SQL corruption operators.

When the competence model decides the simulated LM core fails, the
failure must still look like something a seq2seq decoder produces:
an *executable but wrong* query (the dominant error class in the
paper's analysis — wrong joins, missing filters, wrong values, wrong
aggregations) or occasionally invalid SQL (which PICARD systems then
filter out of the beam).

Every operator takes the gold AST and returns a deterministic variant;
:func:`corrupt` picks operators with a seeded RNG, validates the result
against the schema, and returns a *beam* of candidates ordered by
plausibility.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sqlengine import (
    BinaryOp,
    ColumnRef,
    Conjunction,
    Expression,
    FunctionCall,
    LikeOp,
    Literal,
    QueryNode,
    Schema,
    SelectQuery,
    SetOperation,
    Star,
    format_query,
    parse_sql,
)

from .picard import is_valid_sql

#: FIFA World Cup years — wrong-year corruption stays in-domain
_CUP_YEARS = [1930, 1934, 1938] + list(range(1950, 2023, 4))

#: column swaps a confused decoder plausibly makes, per data model family
_JOIN_CONFUSIONS = {
    "home_team_id": "away_team_id",
    "away_team_id": "home_team_id",
    "team_id": "opponent_team_id",
    "opponent_team_id": "team_id",
    "winner": "runner_up",
    "runner_up": "third",
    "third": "fourth",
    "fourth": "winner",
}

_AGG_CONFUSIONS = {"count": "sum", "sum": "count", "avg": "sum", "min": "max", "max": "min"}


def corrupt(
    gold_sql: str,
    schema: Schema,
    seed: int,
    beam_width: int = 4,
    allow_invalid: bool = False,
    ir_safe: bool = False,
) -> List[str]:
    """A beam of wrong candidate queries derived from ``gold_sql``.

    Candidates are ordered by decoder plausibility; all but optionally
    the first validate against ``schema``.  The list is never empty and
    never contains ``gold_sql`` itself (textually).

    ``ir_safe=True`` restricts to corruptions that *survive a SemQL
    round trip*: IR systems drop and re-derive JOIN conditions from the
    FK graph, so a corrupted join column would be silently repaired by
    their own post-processing — only value/filter/aggregation errors
    can reach their output.
    """
    rng = random.Random(seed)
    # Weighted order: operators whose output reliably *differs* from the
    # gold result come first (mangled values return empty sets, swapped
    # join columns change the joined rows); low-impact mutations like a
    # shifted year on a COUNT query — which can collide numerically —
    # stay possible but rarer.
    weighted = [
        (_truncate_value, 5.0),
        (_wrong_join_column, 0.0 if ir_safe else 4.0),
        (_drop_union_branch, 4.0),
        (_wrong_aggregate, 3.0),
        (_wrong_projection_column, 2.0),
        (_drop_filter, 1.5),
        (_wrong_year, 1.0),
        (_drop_order_and_limit, 0.8),
    ]
    weighted = [(operator, weight) for operator, weight in weighted if weight > 0]
    operators: List[Callable[[QueryNode, random.Random], Optional[QueryNode]]] = []
    pool = list(weighted)
    while pool:
        total = sum(weight for _, weight in pool)
        pick = rng.random() * total
        for index, (operator, weight) in enumerate(pool):
            pick -= weight
            if pick <= 0:
                operators.append(operator)
                pool.pop(index)
                break
    candidates: List[str] = []
    if allow_invalid and rng.random() < 0.25:
        candidates.append(_invalid_variant(gold_sql, rng))
    # The top beam candidate composes *two* mutations: a decoder that
    # lost the question rarely makes exactly one mistake, and a single
    # low-impact mutation can coincide with the gold result (EX's known
    # blind spot).
    composed = _compose(gold_sql, operators, rng, schema)
    if composed is not None:
        candidates.append(composed)
    for operator in operators:
        if len(candidates) >= beam_width:
            break
        ast = parse_sql(gold_sql)  # fresh tree per operator
        mutated = operator(ast, rng)
        if mutated is None:
            continue
        sql = format_query(mutated)
        if sql == gold_sql or sql in candidates:
            continue
        if not is_valid_sql(sql, schema):
            continue
        candidates.append(sql)
    if not candidates:
        # Everything structural failed (e.g. a bare single-column scan):
        # fall back to an off-by-one LIMIT, which is always applicable.
        ast = parse_sql(gold_sql)
        first = _first_core(ast)
        first.limit = (first.limit or 0) + 1
        candidates.append(format_query(ast))
    return candidates[:beam_width]


def _compose(gold_sql: str, operators, rng: random.Random, schema: Schema) -> Optional[str]:
    """Apply the first two applicable operators in sequence."""
    ast = parse_sql(gold_sql)
    applied = 0
    for operator in operators:
        mutated = operator(ast, rng)
        if mutated is None:
            continue
        ast = mutated
        applied += 1
        if applied == 2:
            break
    if applied == 0:
        return None
    sql = format_query(ast)
    if sql == gold_sql or not is_valid_sql(sql, schema):
        return None
    return sql


# -- operators -----------------------------------------------------------------


def _first_core(node: QueryNode) -> SelectQuery:
    while isinstance(node, SetOperation):
        node = node.left
    return node


def _wrong_year(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Shift every year literal to the same neighbouring tournament.

    Consistency matters: shifting only one branch of a UNION would leave
    the other branch producing the gold rows, making the mutation a
    semantic no-op.  A decoder that mis-read the year mis-read it for
    the whole query.
    """
    changed = False
    offset = rng.choice((-1, 1))

    def rewrite(expr: Expression) -> Expression:
        nonlocal changed
        if (
            isinstance(expr, BinaryOp)
            and isinstance(expr.right, Literal)
            and isinstance(expr.right.value, int)
            and expr.right.value in _CUP_YEARS
        ):
            index = _CUP_YEARS.index(expr.right.value)
            shifted = _CUP_YEARS[(index + offset) % len(_CUP_YEARS)]
            changed = True
            return BinaryOp(expr.op, expr.left, Literal(shifted))
        return _rebuild(expr, rewrite)

    result = _rewrite_filters(node, rewrite)
    return result if changed else None


def _drop_filter(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Remove one conjunct from the first WHERE conjunction.

    Name (LIKE) predicates are dropped preferentially: removing the
    entity filter widens the result set and reliably changes it, while
    dropping a year term on an already-unique match is a semantic no-op
    (the pair may only ever have played once).
    """
    for core in node.iter_selects():
        if isinstance(core.where, Conjunction) and core.where.op == "AND":
            terms = list(core.where.terms)
            like_positions = [
                index for index, term in enumerate(terms) if isinstance(term, LikeOp)
            ]
            if like_positions:
                position = rng.choice(like_positions)
            else:
                position = rng.randrange(len(terms))
            terms.pop(position)
            core.where = terms[0] if len(terms) == 1 else Conjunction("AND", tuple(terms))
            return node
    return None


def _wrong_join_column(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Swap a join/filter column for its confusable sibling."""
    changed = False

    def rewrite(expr: Expression) -> Expression:
        nonlocal changed
        if (
            not changed
            and isinstance(expr, ColumnRef)
            and expr.column.lower() in _JOIN_CONFUSIONS
        ):
            changed = True
            return ColumnRef(_JOIN_CONFUSIONS[expr.column.lower()], expr.table)
        return _rebuild(expr, rewrite)

    for core in node.iter_selects():
        new_joins = []
        for join in core.joins:
            if join.condition is not None and not changed:
                new_condition = rewrite(join.condition)
                new_joins.append(type(join)(join.kind, join.table, new_condition))
            else:
                new_joins.append(join)
        core.joins = new_joins
        if not changed and core.where is not None:
            core.where = rewrite(core.where)
    return node if changed else None


def _drop_union_branch(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Keep only the left branch of a set operation (one-sided decode).

    The kept branch additionally gets a value error: a decoder that
    lost half the union has not produced a clean single branch either,
    and without this the mutation is a semantic no-op whenever the
    *dropped* branch happened to select nothing.
    """
    if not isinstance(node, SetOperation):
        return None
    kept = node.left
    shifted = _wrong_year(kept, rng)
    if shifted is not None:
        return shifted
    mangled = _truncate_value(kept, rng)
    if mangled is not None:
        return mangled
    return kept


def _wrong_aggregate(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    for core in node.iter_selects():
        for index, item in enumerate(core.projections):
            expr = item.expr
            if isinstance(expr, FunctionCall) and expr.name in _AGG_CONFUSIONS:
                swapped = FunctionCall(
                    _AGG_CONFUSIONS[expr.name], expr.args, expr.distinct
                )
                core.projections[index] = type(item)(swapped, item.alias)
                return node
    return None


def _truncate_value(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Mangle every name pattern (the decoder lost the entity value).

    All LIKE literals are scrambled, not just the first: leaving one
    branch of a symmetric UNION intact would keep producing the gold
    rows.
    """
    changed = False

    def rewrite(expr: Expression) -> Expression:
        nonlocal changed
        if (
            isinstance(expr, LikeOp)
            and isinstance(expr.pattern, Literal)
            and isinstance(expr.pattern.value, str)
        ):
            core_value = expr.pattern.value.strip("%")
            if len(core_value) > 4:
                changed = True
                # Scramble beyond fuzzy-recovery distance: a reversed
                # name shares almost no character trigrams with the
                # original, so not even ValueNet's value finder can
                # re-ground it (a truly lost value, not a typo).
                scrambled = core_value[::-1].replace(" ", "q")
                return LikeOp(
                    expr.expr,
                    Literal(f"%{scrambled}%"),
                    expr.case_insensitive,
                    expr.negated,
                )
        return _rebuild(expr, rewrite)

    result = _rewrite_filters(node, rewrite)
    return result if changed else None


def _drop_order_and_limit(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    core = _first_core(node)
    if core.order_by or core.limit is not None:
        core.order_by = []
        core.limit = None
        return node
    return None


def _wrong_projection_column(node: QueryNode, rng: random.Random) -> Optional[QueryNode]:
    """Project a sibling column (name vs id confusions)."""
    core = _first_core(node)
    swaps = {
        "teamname": "fifa_code",
        "full_name": "player_name",
        "coach_name": "nationality",
        "stadium_name": "city",
        "club_name": "city",
        "host_country": "venue",
    }
    for index, item in enumerate(core.projections):
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.column.lower() in swaps:
            core.projections[index] = type(item)(
                ColumnRef(swaps[expr.column.lower()], expr.table), item.alias
            )
            return node
    return None


def _invalid_variant(gold_sql: str, rng: random.Random) -> str:
    """An unparseable/unresolvable candidate (pre-PICARD decoder output)."""
    if rng.random() < 0.5:
        return gold_sql.replace("SELECT", "SELECT SELECT", 1)
    return gold_sql.replace("FROM", "FROM unknown_table_x JOIN", 1)


# -- rebuilding helpers ------------------------------------------------------------


def _rebuild(expr: Expression, rewrite) -> Expression:
    """Shallow reconstruction applying ``rewrite`` to children."""
    if isinstance(expr, Conjunction):
        return Conjunction(expr.op, tuple(rewrite(term) for term in expr.terms))
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
    if isinstance(expr, LikeOp):
        return LikeOp(
            rewrite(expr.expr), rewrite(expr.pattern), expr.case_insensitive, expr.negated
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(rewrite(arg) for arg in expr.args), expr.distinct)
    return expr


def _rewrite_filters(node: QueryNode, rewrite) -> QueryNode:
    for core in node.iter_selects():
        if core.where is not None:
            core.where = rewrite(core.where)
        if core.having is not None:
            core.having = rewrite(core.having)
    return node
