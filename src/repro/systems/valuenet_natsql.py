"""ValueNet with NatSQL instead of SemQL — the A4 IR-coverage ablation.

Identical to :class:`repro.systems.valuenet.ValueNet` (same competence
profile, same value finder, same Spider-parser-free training gate — the
NatSQL grammar is what gates trainability) except that post-processing
round-trips through NatSQL: repeated table instances, OR-joins and set
operations survive, so the data model v1 failures disappear.

This is the paper's implied counterfactual: had the deployment used a
wider-coverage IR, the v1→v2 schema redesign would have been far less
necessary.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.sqlengine import ParseError, TokenizeError, format_query, parse_sql

from .base import (
    FAILURE_INVALID_SQL,
    FAILURE_IR_UNSUPPORTED,
    Prediction,
    SystemSpec,
)
from .natsql import decode_natsql, encode_natsql
from .semql import SemqlUnsupportedError
from .valuenet import ValueNet


class ValueNetNatSQL(ValueNet):
    """ValueNet variant decoding through NatSQL."""

    spec = SystemSpec(
        name="ValueNet-NatSQL",
        scale="small",
        parameters="148M",
        uses_db_schema=True,
        uses_foreign_keys=True,
        uses_db_content=True,
        output_space="IR",
        query_normalization="SQL-Parser",
        value_finder=True,
        uses_intermediate_representation=True,
        post_processing="IR to SQL",
        hardware="v100",
        gpu_count=1,
    )

    # Same core ability as ValueNet, but *without* the per-data-model
    # adjustments: those were fitted to compensate the SemQL pipeline's
    # uneven failure rates, which this variant no longer has.  With a
    # lossless IR the system becomes data-model robust by construction.
    profile = dataclasses.replace(ValueNet.profile, version_adjust={})

    def trainable(self, sql: str) -> bool:
        """NatSQL's wider grammar accepts almost every gold query."""
        try:
            encode_natsql(parse_sql(sql), self.schema)
        except (SemqlUnsupportedError, ParseError, TokenizeError):
            return False
        return True

    def _through_pipeline(self, candidate_sql: str, question: str) -> Prediction:
        notes: List[str] = []
        try:
            ast = parse_sql(candidate_sql)
        except (ParseError, TokenizeError) as exc:
            return self._finish(None, question, FAILURE_INVALID_SQL, (str(exc),))
        try:
            program = encode_natsql(ast, self.schema)
        except SemqlUnsupportedError as exc:
            return self._finish(None, question, FAILURE_IR_UNSUPPORTED, (exc.reason,))
        decoded = decode_natsql(program)
        repaired, repair_notes = self._repair_values(decoded)
        notes.extend(repair_notes)
        return self._finish(format_query(repaired), question, None, tuple(notes))
