"""ValueNet (Brunner & Stockinger, ICDE 2021) — the deployed system.

Small language model (BART encoder, 148M parameters) wrapped in the
heaviest pipeline of the five systems (paper Table 4):

* pre-processing: Spider-parser-based query normalization (training
  pairs the parser rejects are *dropped*, the paper's "105 of 1K"),
  schema linking and the value finder over DB content;
* the simulated LM core proposes a decode (gated by the competence
  model, retrieval-backed for out-of-benchmark questions);
* post-processing: the decode is round-tripped through SemQL, and the
  FROM clause is re-derived via FK join-path inference — the stage
  that breaks on data model v1's multi-FK table pairs;
* value repair: ungrounded name literals are re-grounded against DB
  content (fuzzy), ValueNet's distinctive ability to survive typos.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.spider_parser import can_spider_parse
from repro.sqlengine import Database, LikeOp, Literal, ParseError, TokenizeError, format_query, parse_sql

from .base import (
    FAILURE_INVALID_SQL,
    FAILURE_IR_UNSUPPORTED,
    FAILURE_JOIN_PATH,
    FAILURE_NO_CANDIDATE,
    GoldOracle,
    Prediction,
    SystemSpec,
    TextToSQLSystem,
)
from .competence import CompetenceProfile, build_features, fuzzy_grounding_fraction
from .corruption import corrupt
from .joinpath import AmbiguousEdgeError, NoPathError, SchemaGraph
from .semql import SemqlUnsupportedError, decode_semql, encode_sql
from .seq2seq import RetrievalIndex, transfer_sketch
from .timing import VALUENET_LATENCY, output_token_estimate
from .valuefinder import ValueFinder


class ValueNet(TextToSQLSystem):
    """The small-LM, IR-based system of the live deployment."""

    spec = SystemSpec(
        name="ValueNet",
        scale="small",
        parameters="148M",
        uses_db_schema=True,
        uses_foreign_keys=True,
        uses_db_content=True,
        output_space="IR",
        query_normalization="SQL-Parser",
        value_finder=True,
        uses_intermediate_representation=True,
        post_processing="IR to SQL",
        hardware="v100",
        gpu_count=1,
    )

    #: calibrated in EXPERIMENTS.md against the paper's Table 5 column 1
    profile = CompetenceProfile(
        base=-5.25,
        train_curve=1.88,
        train_tail=0.42,
        retrieval=0.6,
        hardness_penalty=0.35,
        join_penalty=0.08,
        set_penalty=0.4,
        subquery_penalty=0.4,
        grounding_gain=1.0,
        version_adjust={"v1": 0.5, "v2": -0.15, "v3": -1.25},
    )

    def __init__(
        self,
        database: Database,
        oracle: Optional[GoldOracle] = None,
        fold: int = 0,
        use_value_finder: bool = True,
    ) -> None:
        super().__init__(database, oracle, fold)
        self.graph = SchemaGraph(self.schema)
        self.use_value_finder = use_value_finder
        self.value_finder = ValueFinder(database)
        self.index = RetrievalIndex()
        self.dropped_pairs = 0

    # -- training: the Spider-parser / SemQL trainability gate ----------------
    def _after_fine_tune(self) -> None:
        usable = [pair for pair in self._train_pairs if self.trainable(pair[1])]
        self.dropped_pairs = len(self._train_pairs) - len(usable)
        self._effective_pairs = usable
        self.index.fit(usable)

    def trainable(self, sql: str) -> bool:
        """Can this gold query pass ValueNet's pre-processing?"""
        if not can_spider_parse(sql):
            return False
        try:
            encode_sql(parse_sql(sql), self.schema)
        except (SemqlUnsupportedError, ParseError, TokenizeError):
            return False
        return True

    @property
    def effective_train_size(self) -> int:
        return len(getattr(self, "_effective_pairs", ()))

    # -- prediction ---------------------------------------------------------------
    def predict(self, question: str) -> Prediction:
        gold = self.oracle.get(question)
        similarity = self.index.best_similarity(question)
        if gold is None:
            return self._predict_from_retrieval(question)
        features = build_features(
            question,
            gold,
            retrieval_similarity=similarity,
            train_size=self.effective_train_size,
            # The value finder lets ValueNet ground misspelled entities
            # against DB content, so grounding is fuzzy-tolerant; with
            # the finder ablated, grounding falls back to exact matching.
            grounding_override=(
                fuzzy_grounding_fraction(question, gold)
                if self.use_value_finder
                else None
            ),
        )
        probability = self.profile.probability(
            features, self.schema.version, self.spec.uses_foreign_keys
        )
        success = self._draw(question, "core") < probability
        if success:
            candidate = gold
        else:
            seed = hash((self.spec.name, question, self.fold)) & 0x7FFFFFFF
            candidate = corrupt(gold, self.schema, seed, ir_safe=True)[0]
        return self._through_pipeline(candidate, question)

    def _predict_from_retrieval(self, question: str) -> Prediction:
        """Deployment path: no oracle — pure sketch transfer."""
        top = self.index.retrieve(question, k=1)
        if not top:
            return Prediction(None, FAILURE_NO_CANDIDATE, latency_seconds=0.4)
        _, source_question, sketch = top[0]
        candidate = transfer_sketch(sketch, source_question, question)
        return self._through_pipeline(candidate, question)

    # -- the real post-processing pipeline --------------------------------------------
    def _through_pipeline(self, candidate_sql: str, question: str) -> Prediction:
        notes: List[str] = []
        try:
            ast = parse_sql(candidate_sql)
        except (ParseError, TokenizeError) as exc:
            return self._finish(None, question, FAILURE_INVALID_SQL, (str(exc),))
        try:
            semql = encode_sql(ast, self.schema)
        except SemqlUnsupportedError as exc:
            return self._finish(None, question, FAILURE_IR_UNSUPPORTED, (exc.reason,))
        try:
            decoded = decode_semql(semql, self.graph)
        except AmbiguousEdgeError as exc:
            return self._finish(None, question, FAILURE_JOIN_PATH, (str(exc),))
        except NoPathError as exc:
            return self._finish(None, question, FAILURE_JOIN_PATH, (str(exc),))
        repaired, repair_notes = self._repair_values(decoded)
        notes.extend(repair_notes)
        return self._finish(format_query(repaired), question, None, tuple(notes))

    def _repair_values(self, query):
        """Re-ground name literals that do not exist in DB content."""
        notes: List[str] = []
        if not self.use_value_finder:
            return query, notes

        def fix(expr):
            if (
                isinstance(expr, LikeOp)
                and isinstance(expr.pattern, Literal)
                and isinstance(expr.pattern.value, str)
            ):
                core = expr.pattern.value.strip("%")
                grounded = self.value_finder.ground(core)
                if grounded is not None and grounded.score < 1.0:
                    notes.append(f"value repair: {core!r} -> {grounded.value!r}")
                    return LikeOp(
                        expr.expr,
                        Literal(f"%{grounded.value}%"),
                        expr.case_insensitive,
                        expr.negated,
                    )
            return expr

        for core in query.iter_selects():
            if core.where is not None:
                core.where = _map_expression(core.where, fix)
        return query, notes

    def _finish(
        self, sql: Optional[str], question: str, failure: Optional[str], notes
    ) -> Prediction:
        tokens = output_token_estimate(sql or "SELECT 1")
        latency = VALUENET_LATENCY.latency(tokens, f"{self.spec.name}|{question}")
        return Prediction(sql, failure, latency, tuple(notes))


def _map_expression(expr, fn):
    """Apply ``fn`` over an expression tree (shallow rebuild)."""
    from repro.sqlengine import BinaryOp, Conjunction, FunctionCall

    replaced = fn(expr)
    if replaced is not expr:
        return replaced
    if isinstance(expr, Conjunction):
        return Conjunction(expr.op, tuple(_map_expression(t, fn) for t in expr.terms))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _map_expression(expr.left, fn), _map_expression(expr.right, fn)
        )
    return expr
