"""Cross-benchmark comparison (paper Table 8).

Static metadata for the published datasets (taken from the paper's own
Table 8), plus live computation of the FootballDB row: example counts,
tables/rows per DB, mean question-token length, and the two qualitative
flags (multi-schema, live users) that make FootballDB unique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.footballdb import FootballDB, VERSIONS

from .dataset import BenchmarkDataset


@dataclass(frozen=True)
class DatasetRow:
    """One row of Table 8."""

    name: str
    examples: int
    databases: int
    tables_per_db: float
    rows_per_db: str  # the paper prints humanized counts ("549K")
    tokens_per_query: float
    multi_schema: bool
    live_users: bool

    def cells(self) -> List[object]:
        return [
            self.name,
            f"{self.examples:,} ({self.databases:,})",
            f"{self.tables_per_db:g} ({self.rows_per_db})",
            f"{self.tokens_per_query:.1f}",
            "yes" if self.multi_schema else "no",
            "yes" if self.live_users else "no",
        ]


#: published numbers, as reported in the paper's Table 8
PUBLISHED_DATASETS = [
    DatasetRow("WikiSQL", 80_654, 26_521, 1, "17", 12.2, False, False),
    DatasetRow("SPIDER", 10_181, 200, 5.1, "2K", 18.5, False, False),
    DatasetRow("KaggleDBQA", 272, 8, 2.3, "280K", 13.8, False, False),
    DatasetRow("ScienceBenchmark", 5_332, 3, 16.7, "51M", 15.6, False, True),
    DatasetRow("BIRD", 12_751, 95, 7.3, "549K", 30.9, False, False),
]


def footballdb_row(football: FootballDB, dataset: BenchmarkDataset) -> DatasetRow:
    """Compute the FootballDB row from the actual artifacts."""
    examples = len(dataset.examples) * len(VERSIONS)  # 400 x 3 = 1,200 pairs
    tables = sum(len(football[v].schema.tables) for v in VERSIONS) / len(VERSIONS)
    rows = sum(football[v].row_count() for v in VERSIONS) / len(VERSIONS)
    token_counts = []
    for example in dataset.examples:
        for version in VERSIONS:
            token_counts.append(len(example.gold[version].split()))
    tokens = sum(token_counts) / len(token_counts) if token_counts else 0.0
    return DatasetRow(
        name="FootballDB",
        examples=examples,
        databases=len(VERSIONS),
        tables_per_db=round(tables, 1),
        rows_per_db=f"{round(rows / 1000)}K",
        tokens_per_query=tokens,
        multi_schema=True,
        live_users=True,
    )


def table8(football: FootballDB, dataset: BenchmarkDataset) -> List[DatasetRow]:
    """All rows of Table 8, FootballDB last (as in the paper)."""
    return PUBLISHED_DATASETS + [footballdb_row(football, dataset)]
