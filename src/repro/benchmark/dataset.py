"""FootballDB benchmark construction (paper Section 6.1).

The construction pipeline mirrors the paper exactly:

1. start from the ~5.9K live-log interactions;
2. filter out non-English, unrelated and unanswerable questions and
   exact duplicates;
3. diversity-sample via topic clustering (keep centroids plus members
   below 0.93 similarity to their centroid) down to a ≈1K gold pool,
   labeled for data model v3;
4. uniform-sample 400 questions over v3 Spider hardness;
5. split 300 train / 100 test (stratified by hardness);
6. compile gold SQL for all three data models for the 400 — yielding
   the 1,200 NL/SQL pairs of the released benchmark.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import analyze_query, classify_hardness, mean_characteristics
from repro.analysis.characteristics import QueryCharacteristics
from repro.analysis.hardness import Hardness
from repro.nlp import diversity_sample, hardness_uniform_sample, train_test_split
from repro.workload import (
    DeploymentSimulator,
    Intent,
    QuestionCategory,
    compile_intent,
)

if TYPE_CHECKING:  # typing only — keeps the module import-free of footballdb
    from repro.domains import DomainInstance  # noqa: F401
    from repro.footballdb import Universe  # noqa: F401

#: the paper's three hand-written data models — the default version axis
#: of datasets built by the football pipeline below
VERSIONS = ("v1", "v2", "v3")


def question_id(question: str) -> str:
    """Stable identifier for a question text."""
    return hashlib.blake2s(question.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class BenchmarkExample:
    """One labeled question with gold SQL for every data model."""

    qid: str
    question: str
    intent: Intent
    category: QuestionCategory
    gold: Dict[str, str]  # version -> SQL

    def hardness(self, version: str) -> Hardness:
        return classify_hardness(self.gold[version])

    def characteristics(self, version: str) -> QueryCharacteristics:
        return analyze_query(self.gold[version])


@dataclass
class BenchmarkDataset:
    """A labeled benchmark: train/test splits plus a larger gold pool.

    For football this is the paper's released benchmark (400 examples ×
    3 data models + the ≈1K pool); :meth:`from_domain` builds the same
    artifact for any registered domain.  ``versions`` names the data
    models every train/test example is labeled for at construction time
    (morph versions added later via :meth:`add_version` are not
    appended — they are derived axes, not part of the released core).
    """

    train_examples: List[BenchmarkExample]
    test_examples: List[BenchmarkExample]
    pool_examples: List[BenchmarkExample]  # the larger single-version gold pool
    versions: Tuple[str, ...] = VERSIONS

    @property
    def examples(self) -> List[BenchmarkExample]:
        return self.train_examples + self.test_examples

    def train_pairs(self, version: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        pairs = [(e.question, e.gold[version]) for e in self.train_examples]
        return pairs if limit is None else pairs[:limit]

    def pool_pairs(self, version: Optional[str] = None) -> List[Tuple[str, str]]:
        """The larger pool (used for the paper's 895-sample experiment).

        The pool is labeled for one version only — ``v3`` for football,
        the base version for generated domains — which is always the
        *last* entry of :attr:`versions`; ``None`` selects it.
        """
        version = version or self.versions[-1]
        return [(e.question, e.gold[version]) for e in self.pool_examples]

    def gold_lookup(self, version: str) -> Dict[str, str]:
        """question -> gold SQL, over *all* examples (train+test+pool)."""
        lookup = {e.question: e.gold[version] for e in self.pool_examples if version in e.gold}
        lookup.update(
            {e.question: e.gold[version] for e in self.examples if version in e.gold}
        )
        return lookup

    def add_version(
        self, version: str, base_version: str, rewrite: Callable[[str], str]
    ) -> int:
        """Label the benchmark for a derived data model.

        Every example already labeled for ``base_version`` gains a
        ``gold[version]`` entry produced by ``rewrite`` (typically a
        :meth:`~repro.footballdb.morph.MorphedModel.rewrite_sql` bound
        method), so the morphed version becomes a first-class grid axis.
        Rewrites are memoized per distinct base SQL string.  Returns the
        number of examples labeled.
        """
        cache: Dict[str, str] = {}
        labeled = 0
        for example in self.train_examples + self.test_examples + self.pool_examples:
            base_sql = example.gold.get(base_version)
            if base_sql is None:
                continue
            rewritten = cache.get(base_sql)
            if rewritten is None:
                rewritten = rewrite(base_sql)
                cache[base_sql] = rewritten
            example.gold[version] = rewritten
            labeled += 1
        return labeled

    # -- Table 3 -------------------------------------------------------------
    def table3(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Query characteristics of train and test sets per data model."""
        report: Dict[str, Dict[str, Dict[str, float]]] = {}
        for split_name, examples in (
            ("train", self.train_examples),
            ("test", self.test_examples),
        ):
            report[split_name] = {}
            for version in self.versions:
                queries = [e.gold[version] for e in examples]
                means = mean_characteristics(queries)
                means["hardness"] = sum(
                    classify_hardness(q).numeric for q in queries
                ) / len(queries)
                report[split_name][version] = means
        return report

    def hardness_distribution(self, version: str, split: str = "test") -> Dict[str, int]:
        examples = self.test_examples if split == "test" else self.train_examples
        counts = {level.value: 0 for level in Hardness}
        for example in examples:
            counts[example.hardness(version).value] += 1
        return counts

    # -- domain construction ---------------------------------------------------
    @classmethod
    def from_domain(
        cls,
        domain: "Union[str, DomainInstance]",
        seed: int = 2022,
        test_fraction: float = 0.25,
    ) -> "BenchmarkDataset":
        """Build a benchmark for any registered domain.

        ``domain`` is a registry name (loaded at ``seed``) or an
        already-loaded :class:`~repro.domains.instance.DomainInstance`.
        ``football`` routes through the paper's Section 6.1 pipeline
        (:func:`build_benchmark` over the shared universe); generated
        domains split their question pool deterministically — paraphrase
        variants of train/test questions land in the pool split, where
        the harness' gold lookup can still resolve them.
        """
        from repro.domains import DomainInstance, load_domain

        if isinstance(domain, str):
            domain = load_domain(domain, seed=seed)
        if not isinstance(domain, DomainInstance):
            raise TypeError(
                f"from_domain expects a registry name or DomainInstance, "
                f"got {type(domain).__name__}"
            )
        if domain.name == "football":
            return build_benchmark(domain.universe, seed=seed)
        if not domain.examples:
            raise ValueError(f"domain {domain.name!r} has no labeled examples")
        base_version = domain.base_version
        core: List[BenchmarkExample] = []
        pool: List[BenchmarkExample] = []
        for example in domain.examples:
            intent = Intent(kind=f"{domain.name}:{example.kind}", slots=example.slots)
            core.append(
                BenchmarkExample(
                    qid=example.qid,
                    question=example.question,
                    intent=intent,
                    category=QuestionCategory.CLEAN,
                    gold=dict(example.gold),
                )
            )
            for paraphrase in example.paraphrases[1:]:
                pool.append(
                    BenchmarkExample(
                        qid=question_id(paraphrase),
                        question=paraphrase,
                        intent=intent,
                        category=QuestionCategory.CLEAN,
                        gold={base_version: example.gold[base_version]},
                    )
                )
        rng = random.Random(f"benchmark|{domain.name}|{seed}")
        rng.shuffle(core)
        test_size = max(1, round(len(core) * test_fraction))
        test, train = core[:test_size], core[test_size:]
        # the pool holds only the paraphrase variants: gold_lookup()
        # already merges train/test examples, so re-including them here
        # would double-count questions in every pool statistic
        return cls(
            train_examples=train,
            test_examples=test,
            pool_examples=pool,
            versions=tuple(domain.versions),
        )

    # -- serialization --------------------------------------------------------
    def to_json(self) -> str:
        def encode(example: BenchmarkExample) -> dict:
            return {
                "qid": example.qid,
                "question": example.question,
                "intent": {
                    "kind": example.intent.kind,
                    "slots": dict(example.intent.slots),
                },
                "category": example.category.value,
                "gold": example.gold,
            }

        return json.dumps(
            {
                "train": [encode(e) for e in self.train_examples],
                "test": [encode(e) for e in self.test_examples],
                "pool": [encode(e) for e in self.pool_examples],
            },
            indent=2,
        )


class BenchmarkBuilder:
    """Runs the Section 6.1 construction pipeline."""

    def __init__(
        self,
        universe: Universe,
        seed: int = 2022,
        log_size: int = 5_900,
        pool_target: int = 1_000,
        sample_size: int = 400,
        test_size: int = 100,
    ) -> None:
        self.universe = universe
        self.seed = seed
        self.log_size = log_size
        self.pool_target = pool_target
        self.sample_size = sample_size
        self.test_size = test_size

    def build(self) -> BenchmarkDataset:
        candidates = self._filtered_log()
        pool = self._diversity_pool(candidates)
        sampled = self._hardness_sample(pool)
        train, test = train_test_split(
            sampled,
            test_size=self.test_size,
            stratify_by=lambda e: e.hardness("v3").value,
            seed=self.seed + 5,
        )
        return BenchmarkDataset(
            train_examples=train, test_examples=test, pool_examples=pool
        )

    # -- stage 1: filter the live log ----------------------------------------
    def _filtered_log(self) -> List[Tuple[str, Intent, QuestionCategory]]:
        records = DeploymentSimulator(self.universe, seed=self.seed).run(self.log_size)
        keep = (QuestionCategory.CLEAN, QuestionCategory.MISSPELLED)
        seen = set()
        filtered = []
        for record in records:
            if record.category not in keep or record.intent is None:
                continue
            if record.question in seen:
                continue
            seen.add(record.question)
            filtered.append((record.question, record.intent, record.category))
        return filtered

    # -- stage 2: diversity sampling + v3 labeling -----------------------------
    def _diversity_pool(self, candidates) -> List[BenchmarkExample]:
        texts = [question for question, _, _ in candidates]
        kept = diversity_sample(texts, similarity_threshold=0.93)
        examples = []
        for index in kept:
            question, intent, category = candidates[index]
            examples.append(self._label(question, intent, category, versions=("v3",)))
        # The paper's threshold was chosen to land at ≈1K questions;
        # ours is a hard cap for determinism.
        return examples[: self.pool_target]

    # -- stage 3+6: hardness-uniform 400 + full three-model labeling -------------
    def _hardness_sample(self, pool: Sequence[BenchmarkExample]) -> List[BenchmarkExample]:
        chosen = hardness_uniform_sample(
            list(pool),
            lambda example: example.hardness("v3").value,
            size=self.sample_size,
            seed=self.seed + 3,
        )
        return [
            self._label(e.question, e.intent, e.category, versions=VERSIONS)
            for e in chosen
        ]

    def _label(
        self,
        question: str,
        intent: Intent,
        category: QuestionCategory,
        versions: Sequence[str],
    ) -> BenchmarkExample:
        gold = {version: compile_intent(intent, version) for version in versions}
        return BenchmarkExample(
            qid=question_id(question),
            question=question,
            intent=intent,
            category=category,
            gold=gold,
        )


def build_benchmark(universe: Universe, seed: int = 2022, **kwargs) -> BenchmarkDataset:
    """Convenience wrapper around :class:`BenchmarkBuilder`."""
    return BenchmarkBuilder(universe, seed=seed, **kwargs).build()
