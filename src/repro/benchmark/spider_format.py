"""Export FootballDB in the Spider benchmark's release format.

The paper's conclusion: "We aim to extend FootballDB with a hidden test
dataset and release a public benchmark in the same vein as the Spider
and BIRD benchmarks."  This module produces that artifact: the standard
``tables.json`` schema description (one entry per data model, since
FootballDB is the first multi-schema dataset) plus ``train.json`` /
``dev.json`` example files in Spider's conventions.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.footballdb import FootballDB, VERSIONS
from repro.sqlengine import Schema

from .dataset import BenchmarkDataset, BenchmarkExample


def schema_entry(schema: Schema, db_id: str) -> Dict[str, object]:
    """One ``tables.json`` entry in Spider's column-index convention."""
    table_names = [table.name for table in schema.tables]
    column_names: List[List[object]] = [[-1, "*"]]
    column_types: List[str] = ["text"]
    positions: Dict[tuple, int] = {}
    for table_index, table in enumerate(schema.tables):
        for column in table.columns:
            positions[(table.name.lower(), column.name.lower())] = len(column_names)
            column_names.append([table_index, column.name])
            column_types.append(column.sql_type.value)
    primary_keys = [
        positions[(table.name.lower(), name.lower())]
        for table in schema.tables
        for name in table.primary_key_columns
    ]
    foreign_keys = [
        [
            positions[(fk.table.lower(), fk.column.lower())],
            positions[(fk.ref_table.lower(), fk.ref_column.lower())],
        ]
        for fk in schema.foreign_keys
    ]
    return {
        "db_id": db_id,
        "table_names": table_names,
        "table_names_original": table_names,
        "column_names": column_names,
        "column_names_original": column_names,
        "column_types": column_types,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
    }


def tables_json(football: FootballDB) -> str:
    """The multi-schema ``tables.json`` (one db_id per data model)."""
    entries = [
        schema_entry(football[version].schema, f"footballdb_{version}")
        for version in VERSIONS
    ]
    return json.dumps(entries, indent=2)


def example_entry(example: BenchmarkExample, version: str) -> Dict[str, object]:
    gold = example.gold[version]
    return {
        "db_id": f"footballdb_{version}",
        "question": example.question,
        "question_toks": example.question.split(),
        "query": gold,
        "query_toks": gold.split(),
        "hardness": example.hardness(version).value,
    }


def examples_json(
    examples: Sequence[BenchmarkExample], versions: Sequence[str] = VERSIONS
) -> str:
    """train.json / dev.json content: one entry per (question, schema)."""
    entries = [
        example_entry(example, version)
        for example in examples
        for version in versions
        if version in example.gold
    ]
    return json.dumps(entries, indent=2)


def export_spider_release(
    football: FootballDB, dataset: BenchmarkDataset
) -> Dict[str, str]:
    """The full release bundle, keyed by file name."""
    return {
        "tables.json": tables_json(football),
        "train.json": examples_json(dataset.train_examples),
        "dev.json": examples_json(dataset.test_examples),
    }
