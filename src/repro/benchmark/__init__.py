"""Benchmark packaging: dataset construction, export and comparison."""

from .compare import DatasetRow, footballdb_row, table8
from .dataset import (
    BenchmarkBuilder,
    BenchmarkDataset,
    BenchmarkExample,
    build_benchmark,
    question_id,
)
from .spider_format import examples_json, export_spider_release, tables_json

__all__ = [
    "BenchmarkBuilder",
    "BenchmarkDataset",
    "BenchmarkExample",
    "DatasetRow",
    "build_benchmark",
    "examples_json",
    "export_spider_release",
    "footballdb_row",
    "question_id",
    "table8",
    "tables_json",
]
