"""Structured question intents.

A user question is modeled as an :class:`Intent`: a *kind* (what is
being asked) plus *slots* (the entities it is asked about).  Intents are
the hinge of the whole reproduction:

* :mod:`repro.workload.nlgen` realizes an intent into natural language
  (with paraphrases, typos and non-English variants);
* :mod:`repro.workload.sqlgen` compiles an intent into gold SQL — once
  per data model, which is how the benchmark gets three differently
  shaped gold queries for the same question.

The kind inventory below is distilled from the paper's description of
what users actually asked during the World Cup deployment (Sections 4
and 5): match scores phrased as "A against B", winners/podium questions
with the "second place" lexical gap, player/club/coach questions that
motivated the data enrichment, plus stadium, card, and statistics
questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Intent:
    """One concrete question intent (hashable, deterministic)."""

    kind: str
    slots: Tuple[Tuple[str, object], ...] = ()

    def slot(self, name: str):
        for key, value in self.slots:
            if key == name:
                return value
        raise KeyError(f"intent {self.kind!r} has no slot {name!r}")

    def has_slot(self, name: str) -> bool:
        return any(key == name for key, _ in self.slots)

    @property
    def spec(self) -> "IntentSpec":
        return REGISTRY[self.kind]

    def __str__(self) -> str:  # pragma: no cover - debug aid
        rendered = ", ".join(f"{k}={v}" for k, v in self.slots)
        return f"{self.kind}({rendered})"


def make_intent(kind: str, **slots) -> Intent:
    """Build an intent with validated slot names."""
    spec = REGISTRY[kind]
    missing = set(spec.slot_names) - set(slots)
    extra = set(slots) - set(spec.slot_names)
    if missing or extra:
        raise ValueError(
            f"intent {kind!r}: missing slots {sorted(missing)}, "
            f"unexpected slots {sorted(extra)}"
        )
    ordered = tuple((name, slots[name]) for name in spec.slot_names)
    return Intent(kind, ordered)


@dataclass(frozen=True)
class IntentSpec:
    """Static description of one intent kind."""

    kind: str
    topic: str  # coarse topic used by the clustering substrate
    slot_names: Tuple[str, ...]
    templates: Tuple[str, ...]  # English surface templates
    weight: float  # relative frequency in the simulated user log
    #: Whether the v1/v2 answer needs both home/away assignments
    #: (the symmetric-match pattern behind Figure 4).
    symmetric: bool = False


#: surface synonyms for the world_cup_result prizes — the paper found
#: "second place"-style phrasings ~3x more frequent than "runner-up".
PRIZE_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "winner": ("win the world cup", "become world champion", "take the title"),
    "runner_up": (
        "finish second place",
        "lose in the final",
        "end up as runner-up",
    ),
    "third": ("finish third", "take third place", "win the bronze final"),
    "fourth": ("finish fourth", "end up fourth", "lose the third place match"),
}


_SPECS: List[IntentSpec] = [
    # -- matches -------------------------------------------------------------
    IntentSpec(
        "match_score", "matches", ("team_a", "team_b", "year"),
        (
            "What was the score between {team_a} and {team_b} in {year}?",
            "How did the game {team_a} against {team_b} end in {year}?",
            "Result of {team_a} vs {team_b} at the {year} world cup?",
            "{team_a} against {team_b} in {year}, what was the final score?",
        ),
        weight=12.0, symmetric=True,
    ),
    IntentSpec(
        "match_count_team", "matches", ("team", "year"),
        (
            "How many matches did {team} play in {year}?",
            "Number of games {team} played at the {year} world cup?",
            "In how many matches did {team} appear in {year}?",
        ),
        weight=5.0, symmetric=True,
    ),
    IntentSpec(
        "team_goals_cup", "matches", ("team", "year"),
        (
            "How many goals did {team} score in {year}?",
            "Total goals by {team} at the {year} world cup?",
            "How often did {team} score in {year}?",
        ),
        weight=4.0, symmetric=True,
    ),
    IntentSpec(
        "final_score", "matches", ("year",),
        (
            "What was the score in the final of {year}?",
            "How did the {year} world cup final end?",
            "Final result of the {year} world cup?",
        ),
        weight=3.5,
    ),
    IntentSpec(
        "biggest_win_cup", "matches", ("year",),
        (
            "What was the highest-scoring match in {year}?",
            "Which game in {year} had the most goals?",
        ),
        weight=2.5,
    ),
    IntentSpec(
        "matches_in_cup", "matches", ("year",),
        (
            "How many matches were played in {year}?",
            "Number of games at the {year} world cup?",
        ),
        weight=0.4,
    ),
    # -- winners and podium -----------------------------------------------------
    IntentSpec(
        "cup_winner", "winners", ("year",),
        (
            "Who won the world cup in {year}?",
            "Which country won the {year} world cup?",
            "World champion of {year}?",
            "Who took the title in {year}?",
        ),
        weight=8.0,
    ),
    IntentSpec(
        "cup_prize_team", "winners", ("year", "prize"),
        (
            "Which team did {prize_phrase} in {year}?",
            "Who {prize_phrase_past} at the {year} world cup?",
        ),
        weight=3.0,
    ),
    IntentSpec(
        "prize_count_team", "winners", ("team", "prize"),
        (
            "How many times did {team} {prize_phrase}?",
            "How often did {team} {prize_phrase}?",
        ),
        weight=5.0,
    ),
    IntentSpec(
        "winners_list", "winners", (),
        (
            "Which countries have won the world cup?",
            "List all world cup winners.",
            "Which teams ever won the title?",
        ),
        weight=2.0,
    ),
    IntentSpec(
        "most_titles", "winners", (),
        (
            "Who won the most world cups?",
            "Which country has the most world cup titles?",
        ),
        weight=2.5,
    ),
    IntentSpec(
        "host_winner", "winners", (),
        (
            "Which host countries won their own world cup?",
            "Did any host win the world cup at home?",
        ),
        weight=1.0,
    ),
    IntentSpec(
        "teams_multiple_titles", "winners", (),
        (
            "Which teams won the world cup more than once?",
            "Which countries have at least two titles, and how many?",
        ),
        weight=2.5,
    ),
    IntentSpec(
        "never_won", "winners", (),
        (
            "Which national teams never won the world cup?",
            "Which countries have no world cup title?",
        ),
        weight=1.5,
    ),
    # -- tournaments --------------------------------------------------------------
    IntentSpec(
        "cup_host", "tournaments", ("year",),
        (
            "Where did the world cup {year} take place?",
            "Which country hosted the {year} world cup?",
            "Host of the world cup in {year}?",
        ),
        weight=0.6,
    ),
    IntentSpec(
        "host_years", "tournaments", ("country",),
        (
            "When did {country} host the world cup?",
            "In which years was the world cup in {country}?",
        ),
        weight=0.5,
    ),
    IntentSpec(
        "cup_goals_total", "tournaments", ("year",),
        (
            "How many goals were scored at the {year} world cup?",
            "Total number of goals in {year}?",
        ),
        weight=0.4,
    ),
    IntentSpec(
        "cup_team_count", "tournaments", ("year",),
        (
            "How many teams participated in {year}?",
            "Number of teams at the {year} world cup?",
        ),
        weight=0.3,
    ),
    IntentSpec(
        "avg_goals_match", "tournaments", ("year",),
        (
            "What was the average number of goals per match in {year}?",
            "Average goals per game at the {year} world cup?",
        ),
        weight=1.0,
    ),
    # -- players -------------------------------------------------------------------
    IntentSpec(
        "top_scorer_cup", "players", ("year",),
        (
            "Who scored the most goals in {year}?",
            "Top scorer of the {year} world cup?",
            "Which player scored most at the {year} world cup?",
        ),
        weight=4.0,
    ),
    IntentSpec(
        "player_goals_cup", "players", ("player", "year"),
        (
            "How many goals did {player} score in {year}?",
            "Number of goals by {player} at the {year} world cup?",
        ),
        weight=3.0,
    ),
    IntentSpec(
        "player_goals_total", "players", ("player",),
        (
            "How many world cup goals did {player} score in total?",
            "Total world cup goals of {player}?",
        ),
        weight=2.0,
    ),
    IntentSpec(
        "squad_list", "players", ("team", "year"),
        (
            "Who played for {team} in {year}?",
            "Which players were in the {team} squad in {year}?",
            "List the {team} players of {year}.",
        ),
        weight=3.0,
    ),
    IntentSpec(
        "tallest_player_team", "players", ("team", "year"),
        (
            "Who was the tallest player of {team} in {year}?",
            "Tallest {team} player at the {year} world cup?",
        ),
        weight=2.0,
    ),
    IntentSpec(
        "player_position", "players", ("player",),
        (
            "What position does {player} play?",
            "Which position is {player}?",
        ),
        weight=0.4,
    ),
    IntentSpec(
        "player_height", "players", ("player",),
        (
            "How tall is {player}?",
            "What is the height of {player}?",
        ),
        weight=0.3,
    ),
    IntentSpec(
        "taller_than_avg", "players", (),
        (
            "Which players are taller than the average world cup player?",
            "List players above average height.",
        ),
        weight=0.8,
    ),
    IntentSpec(
        "scorers_in_final", "players", ("year",),
        (
            "Who scored in the final of {year}?",
            "Which players scored in the {year} world cup final?",
        ),
        weight=2.0,
    ),
    IntentSpec(
        "top_scorers_list", "players", ("year", "top_n"),
        (
            "Who were the top {top_n} scorers in {year} and how many goals did they score?",
            "List the {top_n} best scorers of the {year} world cup with their goals.",
        ),
        weight=2.5,
    ),
    IntentSpec(
        "avg_height_team", "players", ("team", "year"),
        (
            "What was the average height of the {team} squad in {year}?",
            "Average player height of {team} at the {year} world cup?",
        ),
        weight=1.5,
    ),
    IntentSpec(
        "goals_by_position", "players", ("year",),
        (
            "How many goals were scored per position in {year}?",
            "Goals by player position at the {year} world cup?",
        ),
        weight=1.5,
    ),
    # -- clubs, leagues, coaches ------------------------------------------------------
    IntentSpec(
        "player_clubs", "clubs", ("player",),
        (
            "Which clubs did {player} play for?",
            "What clubs has {player} played at?",
        ),
        weight=3.5,
    ),
    IntentSpec(
        "club_players", "clubs", ("club",),
        (
            "Which world cup players played for {club}?",
            "Who has played for {club}?",
        ),
        weight=1.5,
    ),
    IntentSpec(
        "club_league", "clubs", ("club",),
        (
            "In which league does {club} play?",
            "Which league is {club} part of?",
        ),
        weight=1.5,
    ),
    IntentSpec(
        "league_clubs_count", "clubs", ("league",),
        (
            "How many clubs play in the {league}?",
            "Number of clubs in the {league}?",
        ),
        weight=1.0,
    ),
    IntentSpec(
        "coach_of_team", "coaches", ("team", "year"),
        (
            "Who coached {team} in {year}?",
            "Who was the coach of {team} at the {year} world cup?",
        ),
        weight=2.5,
    ),
    IntentSpec(
        "coach_clubs", "coaches", ("coach",),
        (
            "Which clubs did {coach} coach?",
            "What clubs has {coach} managed?",
        ),
        weight=1.0,
    ),
    # -- stadiums -------------------------------------------------------------------------
    IntentSpec(
        "final_stadium", "stadiums", ("year",),
        (
            "In which stadium was the final of {year} played?",
            "Where was the {year} world cup final?",
        ),
        weight=1.5,
    ),
    IntentSpec(
        "stadium_matches_count", "stadiums", ("stadium",),
        (
            "How many matches were played at {stadium}?",
            "Number of world cup games in {stadium}?",
        ),
        weight=1.0,
    ),
    IntentSpec(
        "biggest_stadium", "stadiums", ("country",),
        (
            "What is the biggest stadium in {country}?",
            "Largest world cup stadium of {country}?",
        ),
        weight=1.0,
    ),
    # -- cards and events --------------------------------------------------------------------
    IntentSpec(
        "cards_in_cup", "cards", ("year", "card"),
        (
            "How many {card}s were shown in {year}?",
            "Number of {card}s at the {year} world cup?",
        ),
        weight=1.5,
    ),
    IntentSpec(
        "cards_in_match", "cards", ("team_a", "team_b", "year", "card"),
        (
            "How many {card}s were shown in {team_a} against {team_b} in {year}?",
            "{card}s in the game {team_a} vs {team_b} in {year}?",
        ),
        weight=4.5, symmetric=True,
    ),
    IntentSpec(
        "penalties_in_cup", "cards", ("year",),
        (
            "How many penalties were scored in {year}?",
            "Number of penalty goals at the {year} world cup?",
        ),
        weight=1.0,
    ),
]

REGISTRY: Dict[str, IntentSpec] = {spec.kind: spec for spec in _SPECS}

ALL_KINDS: Tuple[str, ...] = tuple(REGISTRY)

TOPICS: Tuple[str, ...] = tuple(
    dict.fromkeys(spec.topic for spec in _SPECS)
)


def kinds_for_topic(topic: str) -> List[str]:
    return [spec.kind for spec in _SPECS if spec.topic == topic]
