"""Deployment log records and the Table 1 statistics.

Concurrency contract: ``LogRecord`` is a frozen dataclass of scalars —
picklable, hashable, safe to share or ship across process boundaries.
Log synthesis (here and in :mod:`repro.domains.logs`) is a pure
function of its seed, so the serving load generator and the ingestion
replay driver (``src/repro/evaluation/ingestion.py``) can regenerate
an identical stream in any process instead of transferring it; the
statistics helpers below are pure functions over the records they are
given.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from .intents import Intent


class QuestionCategory(enum.Enum):
    """Why a logged question looks the way it does (Section 4)."""

    CLEAN = "clean"
    MISSPELLED = "misspelled"
    NON_ENGLISH = "non_english"
    UNRELATED = "unrelated"
    UNANSWERABLE = "unanswerable"
    AMBIGUOUS = "ambiguous"


class Feedback(enum.Enum):
    NONE = "none"
    THUMBS_UP = "thumbs_up"
    THUMBS_DOWN = "thumbs_down"


@dataclass(frozen=True)
class LogRecord:
    """One user interaction with the deployed system."""

    log_id: int
    question: str
    category: QuestionCategory
    intent: Optional[Intent]  # None for unrelated/unanswerable noise
    sql_generated: bool
    predicted_sql: Optional[str]
    prediction_correct: Optional[bool]  # None when no SQL was produced
    feedback: Feedback
    corrected_sql: Optional[str]  # expert-provided fix, when given


@dataclass(frozen=True)
class Table1Stats:
    """The paper's Table 1: statistics of live user logs."""

    questions_issued: int
    sql_generated: int
    no_sql_generated: int
    thumbs_up: int
    thumbs_down: int
    corrected_queries: int

    @property
    def generation_rate(self) -> float:
        if not self.questions_issued:
            return 0.0
        return self.sql_generated / self.questions_issued

    def rows(self) -> List[tuple]:
        """(label, value) rows in the paper's order."""
        return [
            ("#NL questions issued", self.questions_issued),
            ("#Times SQL generated", self.sql_generated),
            ("#Times no SQL generated", self.no_sql_generated),
            ("#Thumbs up", self.thumbs_up),
            ("#Thumbs down", self.thumbs_down),
            ("#User corrected SQL queries", self.corrected_queries),
        ]


def summarize(records: Iterable[LogRecord]) -> Table1Stats:
    records = list(records)
    return Table1Stats(
        questions_issued=len(records),
        sql_generated=sum(1 for r in records if r.sql_generated),
        no_sql_generated=sum(1 for r in records if not r.sql_generated),
        thumbs_up=sum(1 for r in records if r.feedback is Feedback.THUMBS_UP),
        thumbs_down=sum(1 for r in records if r.feedback is Feedback.THUMBS_DOWN),
        corrected_queries=sum(1 for r in records if r.corrected_sql is not None),
    )
