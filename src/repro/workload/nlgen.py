"""Natural-language realization of intents.

Turns an :class:`Intent` into a user question.  Besides clean English
realizations, the module produces the noise classes the paper observed
in the live logs (Section 4, "Overall Observations"):

1. unrelated questions,
2. unanswerable questions (intent outside the DB's scope),
3. ambiguous questions,
4. questions in languages other than English,
5. spelling errors in player names.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .intents import PRIZE_SYNONYMS, REGISTRY, Intent

_CARD_SURFACE = {"yellow_card": "yellow card", "red_card": "red card"}

#: A few non-English question templates (German, Spanish, French) — the
#: deployment received these and could not serve them.
NON_ENGLISH_TEMPLATES = [
    "Wer hat die Weltmeisterschaft {year} gewonnen?",
    "Wie viele Tore hat {team} {year} geschossen?",
    "¿Quién ganó la copa del mundo de {year}?",
    "¿Cuántos goles marcó {team} en {year}?",
    "Qui a gagné la coupe du monde {year} ?",
    "Combien de buts {team} a marqué en {year} ?",
]

UNRELATED_QUESTIONS = [
    "What is the weather in Doha today?",
    "How do I reset my password?",
    "Who is the president of FIFA?",
    "What time is kickoff tonight?",
    "Can you recommend a good restaurant near the stadium?",
    "Why is the sky blue?",
    "Tell me a joke about football.",
    "What does offside mean?",
]

UNANSWERABLE_QUESTIONS = [
    "What was the market value of the winning squad in 2022?",
    "How many people watched the final on TV?",
    "Which referee made the most mistakes?",
    "What was the possession percentage in the final?",
    "Who had the fastest shot of the tournament?",
    "How many passes did the winning team complete?",
]

AMBIGUOUS_QUESTIONS = [
    "Who is the best player?",
    "Which team is better?",
    "Who won?",
    "How many goals?",
    "Was it a good game?",
]


def realize(intent: Intent, rng: random.Random) -> str:
    """Render ``intent`` as a clean English question."""
    spec = REGISTRY[intent.kind]
    template = rng.choice(spec.templates)
    return _fill(template, intent, rng)


def realize_all(intent: Intent) -> List[str]:
    """Every template realization (used by paraphrase tests)."""
    rng = random.Random(0)
    return [_fill(template, intent, rng) for template in REGISTRY[intent.kind].templates]


def _fill(template: str, intent: Intent, rng: random.Random) -> str:
    values = dict(intent.slots)
    if "prize" in values:
        phrase = rng.choice(PRIZE_SYNONYMS[values["prize"]])
        values["prize_phrase"] = phrase
        values["prize_phrase_past"] = _past_tense(phrase)
    if "card" in values:
        values["card"] = _CARD_SURFACE[values["card"]]
    return template.format(**values)


def _past_tense(phrase: str) -> str:
    head, _, tail = phrase.partition(" ")
    irregular = {"win": "won", "become": "became", "take": "took", "lose": "lost",
                 "finish": "finished", "end": "ended"}
    return f"{irregular.get(head, head + 'ed')} {tail}"


# -- noise -------------------------------------------------------------------


def misspell(text: str, rng: random.Random) -> str:
    """Introduce one realistic typo (swap, drop or double a letter).

    Operates on a word of length >= 5 so the result stays readable —
    matching the 'multitude of spelling errors for player names' the
    paper reports.
    """
    words = text.split(" ")
    candidates = [i for i, word in enumerate(words) if len(word) >= 5 and word[0].isalpha()]
    if not candidates:
        return text
    index = rng.choice(candidates)
    word = words[index]
    position = rng.randint(1, len(word) - 2)
    mode = rng.random()
    if mode < 0.4:  # swap neighbours
        word = word[:position] + word[position + 1] + word[position] + word[position + 2:]
    elif mode < 0.7:  # drop one letter
        word = word[:position] + word[position + 1:]
    else:  # double one letter
        word = word[:position] + word[position] + word[position:]
    words[index] = word
    return " ".join(words)


def realize_non_english(intent: Intent, rng: random.Random) -> Optional[str]:
    """A non-English variant, if the intent's slots fit the templates."""
    year = intent.slot("year") if intent.has_slot("year") else 2022
    team = intent.slot("team") if intent.has_slot("team") else "Brasilien"
    template = rng.choice(NON_ENGLISH_TEMPLATES)
    return template.format(year=year, team=team)


def sample_unrelated(rng: random.Random) -> str:
    return rng.choice(UNRELATED_QUESTIONS)


def sample_unanswerable(rng: random.Random) -> str:
    return rng.choice(UNANSWERABLE_QUESTIONS)


def sample_ambiguous(rng: random.Random) -> str:
    return rng.choice(AMBIGUOUS_QUESTIONS)
