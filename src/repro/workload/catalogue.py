"""Intent instantiation over a concrete universe.

The :class:`IntentSampler` turns the abstract intent kinds of
:mod:`repro.workload.intents` into concrete intents whose slots
reference entities that exist in the generated universe — mirroring how
real users asked about real teams and the players they saw on TV.

Sampling choices mirror the deployment's observed biases: recent
tournaments dominate, famous (high-scoring) players are asked about far
more often than squad fillers, and "A against B" questions usually name
a pairing that actually happened.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.footballdb import Universe

from .intents import ALL_KINDS, REGISTRY, Intent, make_intent

#: recency bias for year slots — the deployment ran during the 2022 cup.
_YEAR_WEIGHTS = {2022: 9.0, 2018: 5.0, 2014: 5.0, 2010: 3.0, 2006: 2.0}
_PRIZE_WEIGHTS = {"winner": 4.0, "runner_up": 3.0, "third": 2.0, "fourth": 1.0}


class IntentSampler:
    """Draws concrete intents from a universe, deterministically."""

    def __init__(self, universe: Universe, seed: int = 7) -> None:
        self.universe = universe
        self._rng = random.Random(seed)
        self._years = universe.years
        self._year_weights = [
            _YEAR_WEIGHTS.get(year, 1.0) for year in self._years
        ]
        self._participants: Dict[int, List[int]] = {}
        for match in universe.matches:
            teams = self._participants.setdefault(match.year, [])
            for team_id in (match.home_team_id, match.away_team_id):
                if team_id not in teams:
                    teams.append(team_id)
        self._pairings: Dict[int, List[Tuple[int, int]]] = {}
        for match in universe.matches:
            self._pairings.setdefault(match.year, []).append(
                (match.home_team_id, match.away_team_id)
            )
        # Famous players: cup top scorers are asked about most.
        scorers = sorted(
            universe.squads, key=lambda member: member.goals, reverse=True
        )
        self._famous_players = [
            universe.player(member.player_id).full_name for member in scorers[:300]
        ]
        self._squad_players: Dict[int, List[str]] = {}
        for member in universe.squads:
            self._squad_players.setdefault(member.year, []).append(
                universe.player(member.player_id).full_name
            )
        self._cup_coaches = sorted(
            {
                (member.coach_id, universe.coaches[member.coach_id - 1].name)
                for member in universe.squads
            }
        )
        # Teams that ever reached a podium: users overwhelmingly ask
        # "how many times did X win" about teams that actually did.
        self._podium_teams = sorted(
            {
                universe.team(team_id).name
                for cup in universe.world_cups
                for team_id in (
                    cup.winner_id, cup.runner_up_id, cup.third_id, cup.fourth_id
                )
            }
        )

    # -- slot sampling ------------------------------------------------------
    def sample_year(self) -> int:
        return self._rng.choices(self._years, weights=self._year_weights)[0]

    def sample_team(self, year: Optional[int] = None) -> str:
        if year is not None:
            team_id = self._rng.choice(self._participants[year])
            return self.universe.team(team_id).name
        return self._rng.choice(self.universe.teams).name

    def sample_pair(self, year: int) -> Tuple[str, str]:
        """Two team names; 95% of the time a pairing that was played.

        A small residue of never-played pairings keeps the paper's
        "semantic mismatch" phenomenon in the workload without letting
        empty-result questions dominate the EX denominator.
        """
        if self._rng.random() < 0.95:
            home, away = self._rng.choice(self._pairings[year])
            pair = [self.universe.team(home).name, self.universe.team(away).name]
        else:
            teams = self._rng.sample(self._participants[year], 2)
            pair = [self.universe.team(t).name for t in teams]
        self._rng.shuffle(pair)
        return pair[0], pair[1]

    def sample_player(self, year: Optional[int] = None) -> str:
        """A player name; year-consistent when the question names a cup.

        Users ask about players *they saw play* — sampling the player
        independently of the year would produce questions whose answer
        is legitimately empty, which real users rarely asked.
        """
        if year is not None:
            return self._rng.choice(self._squad_players[year])
        if self._rng.random() < 0.75 and self._famous_players:
            return self._rng.choice(self._famous_players)
        return self._rng.choice(self.universe.players).full_name

    def sample_prize(self) -> str:
        prizes = list(_PRIZE_WEIGHTS)
        return self._rng.choices(prizes, weights=[_PRIZE_WEIGHTS[p] for p in prizes])[0]

    def sample_podium_team(self) -> str:
        """A team with at least one podium finish (85%) or any team."""
        if self._rng.random() < 0.85:
            return self._rng.choice(self._podium_teams)
        return self._rng.choice(self.universe.teams).name

    def sample_club(self) -> str:
        return self._rng.choice(self.universe.clubs).name

    def sample_league(self) -> str:
        return self._rng.choice(self.universe.leagues).name

    def sample_stadium(self) -> str:
        return self._rng.choice(self.universe.stadiums).name

    def sample_host_country(self) -> str:
        return self._rng.choice(sorted({cup.host for cup in self.universe.world_cups}))

    def sample_coach(self) -> str:
        return self._rng.choice(self._cup_coaches)[1]

    def sample_card(self, per_match: bool = False) -> str:
        """Card colour; per-match questions skew yellow (red cards in a
        single game are rare enough that the true answer is usually 0)."""
        weights = [6, 1] if per_match else [3, 1]
        return self._rng.choices(["yellow_card", "red_card"], weights=weights)[0]

    # -- intent sampling ------------------------------------------------------
    def sample_intent(self, kind: Optional[str] = None) -> Intent:
        if kind is None:
            kinds = list(ALL_KINDS)
            weights = [REGISTRY[k].weight for k in kinds]
            kind = self._rng.choices(kinds, weights=weights)[0]
        return self._fill(kind)

    def population(self, size: int) -> List[Intent]:
        """A population of intents distributed by spec weight."""
        return [self.sample_intent() for _ in range(size)]

    def _fill(self, kind: str) -> Intent:
        spec = REGISTRY[kind]
        slots: Dict[str, object] = {}
        year: Optional[int] = None
        if "year" in spec.slot_names:
            year = self.sample_year()
            slots["year"] = year
        if "team_a" in spec.slot_names:
            slots["team_a"], slots["team_b"] = self.sample_pair(year)
        if "team" in spec.slot_names:
            if "prize" in spec.slot_names:
                slots["team"] = self.sample_podium_team()
            else:
                slots["team"] = self.sample_team(year)
        if "player" in spec.slot_names:
            slots["player"] = self.sample_player(year)
        if "prize" in spec.slot_names:
            slots["prize"] = self.sample_prize()
        if "club" in spec.slot_names:
            slots["club"] = self.sample_club()
        if "league" in spec.slot_names:
            slots["league"] = self.sample_league()
        if "stadium" in spec.slot_names:
            slots["stadium"] = self.sample_stadium()
        if "country" in spec.slot_names:
            slots["country"] = self.sample_host_country()
        if "coach" in spec.slot_names:
            slots["coach"] = self.sample_coach()
        if "card" in spec.slot_names:
            slots["card"] = self.sample_card(per_match="team_a" in spec.slot_names)
        if "top_n" in spec.slot_names:
            slots["top_n"] = self._rng.choice([3, 5, 10])
        return make_intent(kind, **slots)
