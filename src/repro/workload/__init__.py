"""The real-user workload: intents, NL questions, gold SQL, live logs.

Pipeline::

    universe --IntentSampler--> intents --nlgen--> questions
                                   |
                                   +--sqlgen--> gold SQL (one per data model)

    DeploymentSimulator --> ~5.9K LogRecords --> Table 1 statistics
"""

from .catalogue import IntentSampler
from .intents import (
    ALL_KINDS,
    PRIZE_SYNONYMS,
    REGISTRY,
    TOPICS,
    Intent,
    IntentSpec,
    kinds_for_topic,
    make_intent,
)
from .logs import Feedback, LogRecord, QuestionCategory, Table1Stats, summarize
from .nlgen import (
    misspell,
    realize,
    realize_all,
    realize_non_english,
    sample_ambiguous,
    sample_unanswerable,
    sample_unrelated,
)
from .sqlgen import (
    SUPPORTED_KINDS,
    UnsupportedIntentError,
    compile_ast,
    compile_intent,
)
from .users import DeploymentSimulator

__all__ = [
    "ALL_KINDS",
    "DeploymentSimulator",
    "Feedback",
    "Intent",
    "IntentSampler",
    "IntentSpec",
    "LogRecord",
    "PRIZE_SYNONYMS",
    "QuestionCategory",
    "REGISTRY",
    "SUPPORTED_KINDS",
    "TOPICS",
    "Table1Stats",
    "UnsupportedIntentError",
    "compile_ast",
    "compile_intent",
    "kinds_for_topic",
    "make_intent",
    "misspell",
    "realize",
    "realize_all",
    "realize_non_english",
    "sample_ambiguous",
    "sample_unanswerable",
    "sample_unrelated",
    "summarize",
]
