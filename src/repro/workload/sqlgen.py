"""Intent → gold SQL, once per data model.

This module plays the role of the paper's six expert annotators: every
intent kind has a compiler that produces the reference SQL for data
models v1, v2 and v3.  The compilers build engine ASTs (so the output
is parseable and executable by construction) and embody the paper's
Figure 4 / Listing 1 semantics:

* symmetric match questions ("A against B") need a ``UNION`` over both
  home/away assignments in v1 and v2, but a single flat join in v3;
* v2 routes all team references through the ``plays_as_home`` /
  ``plays_as_away`` bridge tables (most joins of any model);
* podium questions use FK columns in v1 (``world_cup.winner``), the
  text ``prize`` column in v2, and Boolean columns in v3 (Listing 1);
* the v3 ``plays_match`` perspective table eliminates every set
  operation in the workload (Table 3: 0.00 set ops for v3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sqlengine import (
    BinaryOp,
    ColumnRef,
    Conjunction,
    Expression,
    FunctionCall,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    TableRef,
    format_query,
)

from .intents import Intent

VERSIONS = ("v1", "v2", "v3")


class UnsupportedIntentError(Exception):
    """Raised when an intent has no compiler for a data model."""


# -- tiny AST-building DSL ----------------------------------------------------


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(column, table)


def lit(value) -> Literal:
    return Literal(value)


def eq(left: Expression, right: Expression) -> BinaryOp:
    return BinaryOp("=", left, right)


def name_filter(table: str, column: str, value: str) -> LikeOp:
    """The annotators' house style: ``x ILIKE '%value%'``."""
    return LikeOp(col(table, column), lit(f"%{value}%"), case_insensitive=True)


def and_(*terms: Expression) -> Expression:
    flattened = [term for term in terms if term is not None]
    if len(flattened) == 1:
        return flattened[0]
    return Conjunction("AND", tuple(flattened))


def or_(*terms: Expression) -> Expression:
    if len(terms) == 1:
        return terms[0]
    return Conjunction("OR", tuple(terms))


def count_star() -> FunctionCall:
    return FunctionCall("count", (Star(),))


def count_distinct(expr: Expression) -> FunctionCall:
    return FunctionCall("count", (expr,), distinct=True)


def agg(name: str, expr: Expression) -> FunctionCall:
    return FunctionCall(name, (expr,))


def join(table: str, alias: str, condition: Expression) -> Join:
    return Join(JoinKind.INNER, TableRef(table, alias), condition)


def select(
    projections: List[Expression],
    from_table: Optional[tuple] = None,
    joins: Optional[List[Join]] = None,
    where: Optional[Expression] = None,
    group_by: Optional[List[Expression]] = None,
    order_by: Optional[List[OrderItem]] = None,
    limit: Optional[int] = None,
    distinct: bool = False,
) -> SelectQuery:
    return SelectQuery(
        projections=[SelectItem(p) for p in projections],
        from_table=TableRef(*from_table) if from_table else None,
        joins=joins or [],
        where=where,
        group_by=group_by or [],
        order_by=order_by or [],
        limit=limit,
        distinct=distinct,
    )


# -- public API -----------------------------------------------------------------


def compile_ast(intent: Intent, version: str) -> QueryNode:
    """Gold SQL AST for ``intent`` under data model ``version``."""
    try:
        builder = _BUILDERS[intent.kind]
    except KeyError:
        raise UnsupportedIntentError(
            f"no SQL compiler for intent kind {intent.kind!r}"
        ) from None
    if version not in VERSIONS:
        raise UnsupportedIntentError(f"unknown data model version {version!r}")
    return builder(intent, version)


def compile_intent(intent: Intent, version: str) -> str:
    """Gold SQL text for ``intent`` under data model ``version``."""
    return format_query(compile_ast(intent, version))


# -- matches ----------------------------------------------------------------------


def _match_core_v1(team_a: str, team_b: str, year: int, projections) -> SelectQuery:
    return select(
        projections,
        from_table=("match", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T2", "team_id"), col("T1", "home_team_id"))),
            join("national_team", "T3", eq(col("T3", "team_id"), col("T1", "away_team_id"))),
        ],
        where=and_(
            name_filter("T2", "teamname", team_a),
            name_filter("T3", "teamname", team_b),
            eq(col("T1", "year"), lit(year)),
        ),
    )


def _match_core_v2(team_a: str, team_b: str, year: int, projections) -> SelectQuery:
    return select(
        projections,
        from_table=("match", "T1"),
        joins=[
            join("plays_as_home", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
            join("national_team", "T3", eq(col("T2", "team_id"), col("T3", "team_id"))),
            join("plays_as_away", "T4", eq(col("T1", "match_id"), col("T4", "match_id"))),
            join("national_team", "T5", eq(col("T4", "team_id"), col("T5", "team_id"))),
        ],
        where=and_(
            name_filter("T3", "teamname", team_a),
            name_filter("T5", "teamname", team_b),
            eq(col("T1", "year"), lit(year)),
        ),
    )


def _match_score(intent: Intent, version: str) -> QueryNode:
    team_a = intent.slot("team_a")
    team_b = intent.slot("team_b")
    year = intent.slot("year")
    if version == "v1":
        projections = [
            col("T2", "teamname"),
            col("T3", "teamname"),
            col("T1", "home_team_goals"),
            col("T1", "away_team_goals"),
        ]
        return SetOperation(
            SetOperator.UNION,
            _match_core_v1(team_a, team_b, year, projections),
            _match_core_v1(team_b, team_a, year, projections),
        )
    if version == "v2":
        projections = [
            col("T3", "teamname"),
            col("T5", "teamname"),
            col("T2", "home_team_goals"),
            col("T4", "away_team_goals"),
        ]
        return SetOperation(
            SetOperator.UNION,
            _match_core_v2(team_a, team_b, year, projections),
            _match_core_v2(team_b, team_a, year, projections),
        )
    # v3: Figure 4, right — one flat join, no UNION.
    return select(
        [
            col("T1", "teamname"),
            col("T3", "teamname"),
            col("T2", "team_goals"),
            col("T2", "opponent_team_goals"),
        ],
        from_table=("national_team", "T1"),
        joins=[
            join("plays_match", "T2", eq(col("T2", "team_id"), col("T1", "team_id"))),
            join(
                "national_opponent_team",
                "T3",
                eq(col("T3", "team_id"), col("T2", "opponent_team_id")),
            ),
        ],
        where=and_(
            name_filter("T1", "teamname", team_a),
            name_filter("T3", "teamname", team_b),
            eq(col("T2", "year"), lit(year)),
        ),
    )


def _match_count_team(intent: Intent, version: str) -> QueryNode:
    team = intent.slot("team")
    year = intent.slot("year")
    if version == "v1":
        return select(
            [count_star()],
            from_table=("match", "T1"),
            joins=[
                join(
                    "national_team",
                    "T2",
                    or_(
                        eq(col("T1", "home_team_id"), col("T2", "team_id")),
                        eq(col("T1", "away_team_id"), col("T2", "team_id")),
                    ),
                )
            ],
            where=and_(
                name_filter("T2", "teamname", team), eq(col("T1", "year"), lit(year))
            ),
        )
    if version == "v2":
        return select(
            [count_star()],
            from_table=("match", "T1"),
            joins=[
                join("plays_as_home", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("plays_as_away", "T3", eq(col("T1", "match_id"), col("T3", "match_id"))),
                join(
                    "national_team",
                    "T4",
                    or_(
                        eq(col("T2", "team_id"), col("T4", "team_id")),
                        eq(col("T3", "team_id"), col("T4", "team_id")),
                    ),
                ),
            ],
            where=and_(
                name_filter("T4", "teamname", team), eq(col("T1", "year"), lit(year))
            ),
        )
    return select(
        [count_star()],
        from_table=("plays_match", "T1"),
        joins=[join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id")))],
        where=and_(
            name_filter("T2", "teamname", team), eq(col("T1", "year"), lit(year))
        ),
    )


def _team_goals_cup(intent: Intent, version: str) -> QueryNode:
    team = intent.slot("team")
    year = intent.slot("year")
    if version in ("v1", "v2"):
        # Event-based count: one row in match_fact per goal credited to
        # the team (annotator style that avoids the home/away UNION).
        return select(
            [count_star()],
            from_table=("match_fact", "T1"),
            joins=[
                join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("national_team", "T3", eq(col("T1", "team_id"), col("T3", "team_id"))),
            ],
            where=and_(
                name_filter("T3", "teamname", team),
                eq(col("T2", "year"), lit(year)),
                eq(col("T1", "goal"), lit("True")),
            ),
        )
    return select(
        [agg("sum", col("T1", "team_goals"))],
        from_table=("plays_match", "T1"),
        joins=[join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id")))],
        where=and_(
            name_filter("T2", "teamname", team), eq(col("T1", "year"), lit(year))
        ),
    )


def _final_score(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    stage_filter = eq(col("T1", "stage"), lit("final"))
    if version == "v1":
        return select(
            [
                col("T2", "teamname"),
                col("T3", "teamname"),
                col("T1", "home_team_goals"),
                col("T1", "away_team_goals"),
            ],
            from_table=("match", "T1"),
            joins=[
                join("national_team", "T2", eq(col("T1", "home_team_id"), col("T2", "team_id"))),
                join("national_team", "T3", eq(col("T1", "away_team_id"), col("T3", "team_id"))),
            ],
            where=and_(eq(col("T1", "year"), lit(year)), stage_filter),
        )
    if version == "v2":
        return select(
            [
                col("T3", "teamname"),
                col("T5", "teamname"),
                col("T2", "home_team_goals"),
                col("T4", "away_team_goals"),
            ],
            from_table=("match", "T1"),
            joins=[
                join("plays_as_home", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("national_team", "T3", eq(col("T2", "team_id"), col("T3", "team_id"))),
                join("plays_as_away", "T4", eq(col("T1", "match_id"), col("T4", "match_id"))),
                join("national_team", "T5", eq(col("T4", "team_id"), col("T5", "team_id"))),
            ],
            where=and_(eq(col("T1", "year"), lit(year)), stage_filter),
        )
    return select(
        [
            col("T2", "teamname"),
            col("T3", "teamname"),
            col("T1", "team_goals"),
            col("T1", "opponent_team_goals"),
        ],
        from_table=("plays_match", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id"))),
            join(
                "national_opponent_team",
                "T3",
                eq(col("T1", "opponent_team_id"), col("T3", "team_id")),
            ),
        ],
        where=and_(
            eq(col("T1", "year"), lit(year)),
            stage_filter,
            eq(col("T1", "team_role"), lit("home")),
        ),
    )


def _biggest_win_cup(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version == "v1":
        query = _final_score(intent, version)
        query.where = eq(col("T1", "year"), lit(year))
        query.order_by = [
            OrderItem(
                BinaryOp("+", col("T1", "home_team_goals"), col("T1", "away_team_goals")),
                descending=True,
            )
        ]
        query.limit = 1
        return query
    if version == "v2":
        query = _final_score(intent, version)
        query.where = eq(col("T1", "year"), lit(year))
        query.order_by = [
            OrderItem(
                BinaryOp("+", col("T2", "home_team_goals"), col("T4", "away_team_goals")),
                descending=True,
            )
        ]
        query.limit = 1
        return query
    query = _final_score(intent, version)
    query.where = and_(
        eq(col("T1", "year"), lit(year)), eq(col("T1", "team_role"), lit("home"))
    )
    query.order_by = [
        OrderItem(
            BinaryOp("+", col("T1", "team_goals"), col("T1", "opponent_team_goals")),
            descending=True,
        )
    ]
    query.limit = 1
    return query


def _matches_in_cup(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version in ("v1", "v2"):
        return select(
            [count_star()],
            from_table=("match", "T1"),
            where=eq(col("T1", "year"), lit(year)),
        )
    return select(
        [count_distinct(col("T1", "match_id"))],
        from_table=("plays_match", "T1"),
        where=eq(col("T1", "year"), lit(year)),
    )


# -- winners and podium ------------------------------------------------------------


def _podium_query(version: str, prize: str, projections, extra_where=None, **kwargs):
    """Shared shape of all podium questions, per data model."""
    if version == "v1":
        return select(
            projections,
            from_table=("world_cup", "T1"),
            joins=[
                join("national_team", "T2", eq(col("T1", prize), col("T2", "team_id")))
            ],
            where=extra_where,
            **kwargs,
        )
    prize_filter = (
        eq(col("T1", "prize"), lit(prize))
        if version == "v2"
        else eq(col("T1", prize), lit("True"))
    )
    return select(
        projections,
        from_table=("world_cup_result", "T1"),
        joins=[join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id")))],
        where=and_(prize_filter, extra_where) if extra_where is not None else prize_filter,
        **kwargs,
    )


def _cup_winner(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    return _podium_query(
        version,
        "winner",
        [col("T2", "teamname")],
        extra_where=eq(col("T1", "year"), lit(year)),
    )


def _cup_prize_team(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    prize = intent.slot("prize")
    return _podium_query(
        version,
        prize,
        [col("T2", "teamname")],
        extra_where=eq(col("T1", "year"), lit(year)),
    )


def _prize_count_team(intent: Intent, version: str) -> QueryNode:
    team = intent.slot("team")
    prize = intent.slot("prize")
    return _podium_query(
        version,
        prize,
        [count_star()],
        extra_where=name_filter("T2", "teamname", team),
    )


def _winners_list(intent: Intent, version: str) -> QueryNode:
    query = _podium_query(version, "winner", [col("T2", "teamname")])
    query.distinct = True
    return query


def _most_titles(intent: Intent, version: str) -> QueryNode:
    return _podium_query(
        version,
        "winner",
        [col("T2", "teamname")],
        group_by=[col("T2", "teamname")],
        order_by=[OrderItem(count_star(), descending=True)],
        limit=1,
    )


def _teams_multiple_titles(intent: Intent, version: str) -> QueryNode:
    query = _podium_query(
        version,
        "winner",
        [col("T2", "teamname"), count_star()],
        group_by=[col("T2", "teamname")],
        order_by=[OrderItem(count_star(), descending=True)],
    )
    query.having = BinaryOp(">=", count_star(), lit(2))
    return query


def _never_won(intent: Intent, version: str) -> QueryNode:
    if version == "v1":
        winners = select(
            [col("T2", "teamname")],
            from_table=("world_cup", "T1"),
            joins=[
                join("national_team", "T2", eq(col("T1", "winner"), col("T2", "team_id")))
            ],
        )
        everyone = select([col("T1", "teamname")], from_table=("national_team", "T1"))
        return SetOperation(SetOperator.EXCEPT, everyone, winners)
    if version == "v2":
        winners = select(
            [col("T2", "teamname")],
            from_table=("world_cup_result", "T1"),
            joins=[
                join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id")))
            ],
            where=eq(col("T1", "prize"), lit("winner")),
        )
        everyone = select([col("T1", "teamname")], from_table=("national_team", "T1"))
        return SetOperation(SetOperator.EXCEPT, everyone, winners)
    # v3: boolean columns make NOT IN natural — no set operation needed.
    winners = select(
        [col("T1", "team_id")],
        from_table=("world_cup_result", "T1"),
        where=eq(col("T1", "winner"), lit("True")),
    )
    from repro.sqlengine import InOp

    return select(
        [col("T1", "teamname")],
        from_table=("national_team", "T1"),
        where=InOp(col("T1", "team_id"), subquery=winners, negated=True),
    )


def _host_winner(intent: Intent, version: str) -> QueryNode:
    if version == "v1":
        return select(
            [col("T1", "year"), col("T2", "teamname")],
            from_table=("world_cup", "T1"),
            joins=[
                join("national_team", "T2", eq(col("T1", "winner"), col("T2", "team_id")))
            ],
            where=eq(col("T2", "teamname"), col("T1", "host_country")),
        )
    prize_filter = (
        eq(col("T1", "prize"), lit("winner"))
        if version == "v2"
        else eq(col("T1", "winner"), lit("True"))
    )
    return select(
        [col("T1", "year"), col("T2", "teamname")],
        from_table=("world_cup_result", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id"))),
            join("world_cup", "T3", eq(col("T1", "year"), col("T3", "year"))),
        ],
        where=and_(prize_filter, eq(col("T2", "teamname"), col("T3", "host_country"))),
    )


# -- tournaments -----------------------------------------------------------------------


def _cup_host(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "host_country")],
        from_table=("world_cup", "T1"),
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
    )


def _host_years(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "year")],
        from_table=("world_cup", "T1"),
        where=name_filter("T1", "host_country", intent.slot("country")),
    )


def _cup_goals_total(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "goals_scored")],
        from_table=("world_cup", "T1"),
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
    )


def _cup_team_count(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "teams_count")],
        from_table=("world_cup", "T1"),
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
    )


def _avg_goals_match(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version == "v1":
        return select(
            [agg("avg", BinaryOp("+", col("T1", "home_team_goals"), col("T1", "away_team_goals")))],
            from_table=("match", "T1"),
            where=eq(col("T1", "year"), lit(year)),
        )
    if version == "v2":
        return select(
            [agg("avg", BinaryOp("+", col("T2", "home_team_goals"), col("T3", "away_team_goals")))],
            from_table=("match", "T1"),
            joins=[
                join("plays_as_home", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("plays_as_away", "T3", eq(col("T1", "match_id"), col("T3", "match_id"))),
            ],
            where=eq(col("T1", "year"), lit(year)),
        )
    return select(
        [agg("avg", BinaryOp("+", col("T1", "team_goals"), col("T1", "opponent_team_goals")))],
        from_table=("plays_match", "T1"),
        where=and_(
            eq(col("T1", "year"), lit(year)), eq(col("T1", "team_role"), lit("home"))
        ),
    )


# -- players ----------------------------------------------------------------------------


def _top_scorer_cup(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T2", "full_name")],
        from_table=("player_fact", "T1"),
        joins=[join("player", "T2", eq(col("T1", "player_id"), col("T2", "player_id")))],
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
        order_by=[OrderItem(col("T1", "goals_scored"), descending=True)],
        limit=1,
    )


def _player_goals_cup(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "goals_scored")],
        from_table=("player_fact", "T1"),
        joins=[join("player", "T2", eq(col("T1", "player_id"), col("T2", "player_id")))],
        where=and_(
            name_filter("T2", "full_name", intent.slot("player")),
            eq(col("T1", "year"), lit(intent.slot("year"))),
        ),
    )


def _player_goals_total(intent: Intent, version: str) -> QueryNode:
    return select(
        [agg("sum", col("T1", "goals_scored"))],
        from_table=("player_fact", "T1"),
        joins=[join("player", "T2", eq(col("T1", "player_id"), col("T2", "player_id")))],
        where=name_filter("T2", "full_name", intent.slot("player")),
    )


def _squad_list(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T3", "full_name")],
        from_table=("player_fact", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id"))),
            join("player", "T3", eq(col("T1", "player_id"), col("T3", "player_id"))),
        ],
        where=and_(
            name_filter("T2", "teamname", intent.slot("team")),
            eq(col("T1", "year"), lit(intent.slot("year"))),
        ),
    )


def _tallest_player_team(intent: Intent, version: str) -> QueryNode:
    query = _squad_list(intent, version)
    query.order_by = [OrderItem(col("T3", "height_cm"), descending=True)]
    query.limit = 1
    return query


def _top_scorers_list(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T2", "full_name"), col("T1", "goals_scored")],
        from_table=("player_fact", "T1"),
        joins=[join("player", "T2", eq(col("T1", "player_id"), col("T2", "player_id")))],
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
        order_by=[OrderItem(col("T1", "goals_scored"), descending=True)],
        limit=intent.slot("top_n"),
    )


def _avg_height_team(intent: Intent, version: str) -> QueryNode:
    return select(
        [agg("avg", col("T3", "height_cm"))],
        from_table=("player_fact", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id"))),
            join("player", "T3", eq(col("T1", "player_id"), col("T3", "player_id"))),
        ],
        where=and_(
            name_filter("T2", "teamname", intent.slot("team")),
            eq(col("T1", "year"), lit(intent.slot("year"))),
        ),
    )


def _goals_by_position(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T2", "position"), agg("sum", col("T1", "goals_scored"))],
        from_table=("player_fact", "T1"),
        joins=[join("player", "T2", eq(col("T1", "player_id"), col("T2", "player_id")))],
        where=eq(col("T1", "year"), lit(intent.slot("year"))),
        group_by=[col("T2", "position")],
        order_by=[OrderItem(agg("sum", col("T1", "goals_scored")), descending=True)],
    )


def _taller_than_avg(intent: Intent, version: str) -> QueryNode:
    average = select(
        [agg("avg", col("T2", "height_cm"))], from_table=("player", "T2")
    )
    return select(
        [col("T1", "full_name")],
        from_table=("player", "T1"),
        where=BinaryOp(">", col("T1", "height_cm"), ScalarSubquery(average)),
    )


def _player_position(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "position")],
        from_table=("player", "T1"),
        where=name_filter("T1", "full_name", intent.slot("player")),
    )


def _player_height(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "height_cm")],
        from_table=("player", "T1"),
        where=name_filter("T1", "full_name", intent.slot("player")),
    )


def _scorers_in_final(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version in ("v1", "v2"):
        return select(
            [col("T3", "full_name")],
            from_table=("match_fact", "T1"),
            joins=[
                join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("player", "T3", eq(col("T1", "player_id"), col("T3", "player_id"))),
            ],
            where=and_(
                eq(col("T2", "year"), lit(year)),
                eq(col("T2", "stage"), lit("final")),
                eq(col("T1", "goal"), lit("True")),
            ),
            distinct=True,
        )
    return select(
        [col("T3", "full_name")],
        from_table=("match_fact", "T1"),
        joins=[
            join("plays_match", "T2", eq(col("T1", "match_team_id"), col("T2", "match_team_id"))),
            join("player", "T3", eq(col("T1", "player_id"), col("T3", "player_id"))),
        ],
        where=and_(
            eq(col("T2", "year"), lit(year)),
            eq(col("T2", "stage"), lit("final")),
            eq(col("T1", "goal"), lit("True")),
        ),
        distinct=True,
    )


# -- clubs, leagues, coaches ------------------------------------------------------------


def _player_clubs(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T3", "club_name")],
        from_table=("player", "T1"),
        joins=[
            join("player_club_team", "T2", eq(col("T1", "player_id"), col("T2", "player_id"))),
            join("club", "T3", eq(col("T2", "club_id"), col("T3", "club_id"))),
        ],
        where=name_filter("T1", "full_name", intent.slot("player")),
        distinct=True,
    )


def _club_players(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "full_name")],
        from_table=("player", "T1"),
        joins=[
            join("player_club_team", "T2", eq(col("T1", "player_id"), col("T2", "player_id"))),
            join("club", "T3", eq(col("T2", "club_id"), col("T3", "club_id"))),
        ],
        where=name_filter("T3", "club_name", intent.slot("club")),
        distinct=True,
    )


def _club_league(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T3", "name")],
        from_table=("club", "T1"),
        joins=[
            join("club_league_hist", "T2", eq(col("T1", "club_id"), col("T2", "club_id"))),
            join("league", "T3", eq(col("T2", "league_id"), col("T3", "league_id"))),
        ],
        where=name_filter("T1", "club_name", intent.slot("club")),
        distinct=True,
    )


def _league_clubs_count(intent: Intent, version: str) -> QueryNode:
    return select(
        [count_distinct(col("T2", "club_id"))],
        from_table=("league", "T1"),
        joins=[
            join("club_league_hist", "T2", eq(col("T1", "league_id"), col("T2", "league_id")))
        ],
        where=name_filter("T1", "name", intent.slot("league")),
    )


def _coach_of_team(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T3", "coach_name")],
        from_table=("player_fact", "T1"),
        joins=[
            join("national_team", "T2", eq(col("T1", "team_id"), col("T2", "team_id"))),
            join("coach", "T3", eq(col("T1", "coach_id"), col("T3", "coach_id"))),
        ],
        where=and_(
            name_filter("T2", "teamname", intent.slot("team")),
            eq(col("T1", "year"), lit(intent.slot("year"))),
        ),
        distinct=True,
    )


def _coach_clubs(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T3", "club_name")],
        from_table=("coach", "T1"),
        joins=[
            join("coach_club_team", "T2", eq(col("T1", "coach_id"), col("T2", "coach_id"))),
            join("club", "T3", eq(col("T2", "club_id"), col("T3", "club_id"))),
        ],
        where=name_filter("T1", "coach_name", intent.slot("coach")),
        distinct=True,
    )


# -- stadiums --------------------------------------------------------------------------------


def _final_stadium(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version in ("v1", "v2"):
        return select(
            [col("T2", "stadium_name")],
            from_table=("match", "T1"),
            joins=[join("stadium", "T2", eq(col("T1", "stadium_id"), col("T2", "stadium_id")))],
            where=and_(
                eq(col("T1", "year"), lit(year)), eq(col("T1", "stage"), lit("final"))
            ),
        )
    return select(
        [col("T2", "stadium_name")],
        from_table=("plays_match", "T1"),
        joins=[join("stadium", "T2", eq(col("T1", "stadium_id"), col("T2", "stadium_id")))],
        where=and_(
            eq(col("T1", "year"), lit(year)), eq(col("T1", "stage"), lit("final"))
        ),
        distinct=True,
    )


def _stadium_matches_count(intent: Intent, version: str) -> QueryNode:
    stadium = intent.slot("stadium")
    if version in ("v1", "v2"):
        return select(
            [count_star()],
            from_table=("match", "T1"),
            joins=[join("stadium", "T2", eq(col("T1", "stadium_id"), col("T2", "stadium_id")))],
            where=name_filter("T2", "stadium_name", stadium),
        )
    return select(
        [count_distinct(col("T1", "match_id"))],
        from_table=("plays_match", "T1"),
        joins=[join("stadium", "T2", eq(col("T1", "stadium_id"), col("T2", "stadium_id")))],
        where=name_filter("T2", "stadium_name", stadium),
    )


def _biggest_stadium(intent: Intent, version: str) -> QueryNode:
    return select(
        [col("T1", "stadium_name")],
        from_table=("stadium", "T1"),
        where=name_filter("T1", "country", intent.slot("country")),
        order_by=[OrderItem(col("T1", "capacity"), descending=True)],
        limit=1,
    )


# -- cards and events --------------------------------------------------------------------------


def _cards_in_cup(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    card = intent.slot("card")  # 'yellow_card' | 'red_card'
    if version in ("v1", "v2"):
        return select(
            [count_star()],
            from_table=("match_fact", "T1"),
            joins=[join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id")))],
            where=and_(
                eq(col("T2", "year"), lit(year)), eq(col("T1", card), lit("True"))
            ),
        )
    return select(
        [count_star()],
        from_table=("match_fact", "T1"),
        joins=[
            join("plays_match", "T2", eq(col("T1", "match_team_id"), col("T2", "match_team_id")))
        ],
        where=and_(eq(col("T2", "year"), lit(year)), eq(col("T1", card), lit("True"))),
    )


def _cards_in_match(intent: Intent, version: str) -> QueryNode:
    team_a = intent.slot("team_a")
    team_b = intent.slot("team_b")
    year = intent.slot("year")
    card = intent.slot("card")
    def symmetric(a_table: str, b_table: str) -> Expression:
        """Either assignment of the two teams to the two join sides."""
        return or_(
            and_(
                name_filter(a_table, "teamname", team_a),
                name_filter(b_table, "teamname", team_b),
            ),
            and_(
                name_filter(a_table, "teamname", team_b),
                name_filter(b_table, "teamname", team_a),
            ),
        )
    if version == "v1":
        return select(
            [count_star()],
            from_table=("match_fact", "T1"),
            joins=[
                join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("national_team", "T3", eq(col("T2", "home_team_id"), col("T3", "team_id"))),
                join("national_team", "T4", eq(col("T2", "away_team_id"), col("T4", "team_id"))),
            ],
            where=and_(
                symmetric("T3", "T4"),
                eq(col("T2", "year"), lit(year)),
                eq(col("T1", card), lit("True")),
            ),
        )
    if version == "v2":
        return select(
            [count_star()],
            from_table=("match_fact", "T1"),
            joins=[
                join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id"))),
                join("plays_as_home", "T3", eq(col("T2", "match_id"), col("T3", "match_id"))),
                join("national_team", "T4", eq(col("T3", "team_id"), col("T4", "team_id"))),
                join("plays_as_away", "T5", eq(col("T2", "match_id"), col("T5", "match_id"))),
                join("national_team", "T6", eq(col("T5", "team_id"), col("T6", "team_id"))),
            ],
            where=and_(
                symmetric("T4", "T6"),
                eq(col("T2", "year"), lit(year)),
                eq(col("T1", card), lit("True")),
            ),
        )
    return select(
        [count_star()],
        from_table=("match_fact", "T1"),
        joins=[
            join("plays_match", "T2", eq(col("T1", "match_team_id"), col("T2", "match_team_id"))),
            join("national_team", "T3", eq(col("T2", "team_id"), col("T3", "team_id"))),
            join(
                "national_opponent_team",
                "T4",
                eq(col("T2", "opponent_team_id"), col("T4", "team_id")),
            ),
        ],
        where=and_(
            symmetric("T3", "T4"),
            eq(col("T2", "year"), lit(year)),
            eq(col("T1", card), lit("True")),
        ),
    )


def _penalties_in_cup(intent: Intent, version: str) -> QueryNode:
    year = intent.slot("year")
    if version in ("v1", "v2"):
        return select(
            [count_star()],
            from_table=("match_fact", "T1"),
            joins=[join("match", "T2", eq(col("T1", "match_id"), col("T2", "match_id")))],
            where=and_(
                eq(col("T2", "year"), lit(year)), eq(col("T1", "penalty"), lit("True"))
            ),
        )
    return select(
        [count_star()],
        from_table=("match_fact", "T1"),
        joins=[
            join("plays_match", "T2", eq(col("T1", "match_team_id"), col("T2", "match_team_id")))
        ],
        where=and_(
            eq(col("T2", "year"), lit(year)), eq(col("T1", "penalty"), lit("True"))
        ),
    )


_BUILDERS: Dict[str, Callable[[Intent, str], QueryNode]] = {
    "match_score": _match_score,
    "match_count_team": _match_count_team,
    "team_goals_cup": _team_goals_cup,
    "final_score": _final_score,
    "biggest_win_cup": _biggest_win_cup,
    "matches_in_cup": _matches_in_cup,
    "cup_winner": _cup_winner,
    "cup_prize_team": _cup_prize_team,
    "prize_count_team": _prize_count_team,
    "winners_list": _winners_list,
    "most_titles": _most_titles,
    "host_winner": _host_winner,
    "teams_multiple_titles": _teams_multiple_titles,
    "never_won": _never_won,
    "top_scorers_list": _top_scorers_list,
    "avg_height_team": _avg_height_team,
    "goals_by_position": _goals_by_position,
    "taller_than_avg": _taller_than_avg,
    "cup_host": _cup_host,
    "host_years": _host_years,
    "cup_goals_total": _cup_goals_total,
    "cup_team_count": _cup_team_count,
    "avg_goals_match": _avg_goals_match,
    "top_scorer_cup": _top_scorer_cup,
    "player_goals_cup": _player_goals_cup,
    "player_goals_total": _player_goals_total,
    "squad_list": _squad_list,
    "tallest_player_team": _tallest_player_team,
    "player_position": _player_position,
    "player_height": _player_height,
    "scorers_in_final": _scorers_in_final,
    "player_clubs": _player_clubs,
    "club_players": _club_players,
    "club_league": _club_league,
    "league_clubs_count": _league_clubs_count,
    "coach_of_team": _coach_of_team,
    "coach_clubs": _coach_clubs,
    "final_stadium": _final_stadium,
    "stadium_matches_count": _stadium_matches_count,
    "biggest_stadium": _biggest_stadium,
    "cards_in_cup": _cards_in_cup,
    "cards_in_match": _cards_in_match,
    "penalties_in_cup": _penalties_in_cup,
}

SUPPORTED_KINDS = tuple(_BUILDERS)
