"""Simulation of the nine-month live deployment (paper Sections 3.2/4).

:class:`DeploymentSimulator` generates the ~5.9K-interaction user log
whose aggregate statistics reproduce the paper's Table 1.  The rates are
calibrated to the deployment's observed behaviour:

* the deployed ValueNet produced SQL for 89% of questions — failures
  concentrate on non-English and unrelated input;
* expert users gave sparse positive feedback (174 thumbs up), abundant
  negative feedback (949 thumbs down) and 1,287 corrected queries.

The simulator is *descriptive*: it models the historical deployment
(whose Text-to-SQL system we cannot rerun) rather than calling into
:mod:`repro.systems`.  The live service wrapper that does drive a real
system lives in :mod:`repro.deployment`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.footballdb import Universe

from . import nlgen, sqlgen
from .catalogue import IntentSampler
from .intents import Intent
from .logs import Feedback, LogRecord, QuestionCategory

#: question-category mix observed in the live log
CATEGORY_MIX = [
    (QuestionCategory.CLEAN, 0.62),
    (QuestionCategory.MISSPELLED, 0.14),
    (QuestionCategory.NON_ENGLISH, 0.07),
    (QuestionCategory.UNRELATED, 0.05),
    (QuestionCategory.UNANSWERABLE, 0.06),
    (QuestionCategory.AMBIGUOUS, 0.06),
]

#: P(SQL generated | category) — non-English/unrelated input starves the
#: deployed model of anything it can ground in the schema.
GENERATION_RATE = {
    QuestionCategory.CLEAN: 0.985,
    QuestionCategory.MISSPELLED: 0.96,
    QuestionCategory.NON_ENGLISH: 0.30,
    QuestionCategory.UNRELATED: 0.40,
    QuestionCategory.UNANSWERABLE: 0.82,
    QuestionCategory.AMBIGUOUS: 0.88,
}

#: P(prediction correct | category, SQL generated)
CORRECTNESS_RATE = {
    QuestionCategory.CLEAN: 0.35,
    QuestionCategory.MISSPELLED: 0.20,
    QuestionCategory.NON_ENGLISH: 0.05,
    QuestionCategory.UNRELATED: 0.02,
    QuestionCategory.UNANSWERABLE: 0.03,
    QuestionCategory.AMBIGUOUS: 0.05,
}

THUMBS_UP_IF_CORRECT = 0.11
THUMBS_UP_IF_WRONG = 0.002
THUMBS_DOWN_IF_CORRECT = 0.01
THUMBS_DOWN_IF_WRONG = 0.24
CORRECTION_IF_WRONG = 0.34


class DeploymentSimulator:
    """Generates the live user log."""

    def __init__(self, universe: Universe, seed: int = 2022) -> None:
        self.universe = universe
        self.sampler = IntentSampler(universe, seed=seed + 101)
        self._rng = random.Random(seed + 202)

    def run(self, interactions: int = 5_900) -> List[LogRecord]:
        records = []
        for log_id in range(1, interactions + 1):
            records.append(self._interaction(log_id))
        return records

    # -- one interaction ----------------------------------------------------
    def _interaction(self, log_id: int) -> LogRecord:
        rng = self._rng
        category = rng.choices(
            [category for category, _ in CATEGORY_MIX],
            weights=[weight for _, weight in CATEGORY_MIX],
        )[0]
        intent, question = self._question_for(category, rng)
        generated = rng.random() < GENERATION_RATE[category]
        if not generated:
            return LogRecord(
                log_id, question, category, intent,
                sql_generated=False, predicted_sql=None,
                prediction_correct=None, feedback=Feedback.NONE,
                corrected_sql=None,
            )
        correct = rng.random() < CORRECTNESS_RATE[category]
        predicted, gold = self._prediction_for(intent, correct, rng)
        feedback = self._feedback(correct, rng)
        corrected = None
        if not correct and gold is not None and rng.random() < CORRECTION_IF_WRONG:
            corrected = gold
        return LogRecord(
            log_id, question, category, intent,
            sql_generated=True, predicted_sql=predicted,
            prediction_correct=correct, feedback=feedback,
            corrected_sql=corrected,
        )

    def _question_for(self, category: QuestionCategory, rng: random.Random):
        if category is QuestionCategory.UNRELATED:
            return None, nlgen.sample_unrelated(rng)
        if category is QuestionCategory.UNANSWERABLE:
            return None, nlgen.sample_unanswerable(rng)
        if category is QuestionCategory.AMBIGUOUS:
            return None, nlgen.sample_ambiguous(rng)
        intent = self.sampler.sample_intent()
        if category is QuestionCategory.NON_ENGLISH:
            return intent, nlgen.realize_non_english(intent, rng)
        question = nlgen.realize(intent, rng)
        if category is QuestionCategory.MISSPELLED:
            question = nlgen.misspell(question, rng)
        return intent, question

    def _prediction_for(
        self, intent: Optional[Intent], correct: bool, rng: random.Random
    ):
        """(predicted SQL, gold SQL) under the deployment's data model."""
        if intent is None:
            # Noise questions: the model hallucinated some schema query.
            sql = "SELECT teamname FROM national_team LIMIT 1"
            return sql, None
        gold = sqlgen.compile_intent(intent, "v1")
        if correct:
            return gold, gold
        # A wrong-but-plausible prediction: the gold query of a slightly
        # different intent (retrieval confusion on the year slot).
        wrong = self._confused_variant(intent, rng)
        return wrong, gold

    def _confused_variant(self, intent: Intent, rng: random.Random) -> str:
        if intent.has_slot("year"):
            year = intent.slot("year")
            other_years = [y for y in self.universe.years if y != year]
            swapped = dict(intent.slots)
            swapped["year"] = rng.choice(other_years)
            confused = Intent(intent.kind, tuple(swapped.items()))
            return sqlgen.compile_intent(confused, "v1")
        # No year slot to confuse: the deployed model fell back to a
        # generic lookup that ignores the question's constraints.
        return "SELECT teamname FROM national_team LIMIT 1"

    def _feedback(self, correct: bool, rng: random.Random) -> Feedback:
        if correct:
            if rng.random() < THUMBS_UP_IF_CORRECT:
                return Feedback.THUMBS_UP
            if rng.random() < THUMBS_DOWN_IF_CORRECT:
                return Feedback.THUMBS_DOWN
        else:
            if rng.random() < THUMBS_UP_IF_WRONG:
                return Feedback.THUMBS_UP
            if rng.random() < THUMBS_DOWN_IF_WRONG:
                return Feedback.THUMBS_DOWN
        return Feedback.NONE
