"""Shard workers: where the per-domain services actually run.

A *shard* owns a disjoint subset of the registered domains and
serializes their batches through one worker — either a dedicated
thread in this process (:class:`ThreadShard`) or a dedicated worker
process (:class:`ProcessShard`, its own interpreter and GIL).  Both
expose the same surface to the async front end:

* ``submit_batch(domain, questions)`` — a concurrent Future of one
  :class:`~repro.deployment.service.ServiceResponse` per question,
  answered through :meth:`TextToSQLService.ask_batch` (single
  ``execute_many`` per batch);
* ``lexicons()`` — domain → routing vocabulary, so the front end can
  run :class:`~repro.deployment.routing.DomainRouter` dispatch without
  holding the databases;
* ``metrics()`` — per-domain service metrics.

Process shards are built from :class:`DomainSpec` — a picklable recipe
(domain name, seed, system, train size) the worker initializer turns
into live services on its side of the fork.  Nothing heavier than
strings and ints ever crosses the process boundary on the way in, and
``ServiceResponse`` (plain tuples) on the way out.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.deployment import TextToSQLService, build_lexicon

DEFAULT_SYSTEM = "GPT-3.5"


@dataclass(frozen=True)
class DomainSpec:
    """Picklable recipe for one per-domain service."""

    domain: str
    seed: int = 2022
    system: str = DEFAULT_SYSTEM  # a TextToSQLSystem.spec.name
    train: int = 8  # training pairs / few-shot pool size
    response_cache_size: int = 256
    max_rows: int = 100
    engine_mode: str = "auto"


def _system_class(name: str):
    from repro.systems import ALL_SYSTEMS

    by_name = {cls.spec.name: cls for cls in ALL_SYSTEMS}
    try:
        return by_name[name]
    except KeyError:
        known = ", ".join(sorted(by_name))
        raise ValueError(f"unknown system {name!r} (available: {known})") from None


def build_service(spec: DomainSpec) -> TextToSQLService:
    """Materialize one spec into a live per-domain service."""
    from repro.benchmark import BenchmarkDataset
    from repro.domains import load_domain
    from repro.evaluation import Harness

    instance = load_domain(spec.domain, seed=spec.seed)
    dataset = BenchmarkDataset.from_domain(instance, seed=spec.seed)
    harness = Harness(instance, dataset)
    version = instance.base_version
    system = harness.build_system(_system_class(spec.system), version)
    system.fine_tune(dataset.train_pairs(version)[: spec.train])
    database = instance[version]
    database.engine_mode = spec.engine_mode
    return TextToSQLService(
        system,
        database,
        max_rows=spec.max_rows,
        response_cache_size=spec.response_cache_size,
    )


def assign_shards(domains: Sequence[str], shard_count: int) -> List[List[str]]:
    """Round-robin domains over ``shard_count`` shards, registration order.

    Deterministic (no hashing), and never returns empty shards: the
    effective shard count is capped at the domain count.
    """
    if shard_count <= 0:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    count = min(shard_count, len(domains)) or 1
    shards: List[List[str]] = [[] for _ in range(count)]
    for index, domain in enumerate(domains):
        shards[index % count].append(domain)
    return shards


class ThreadShard:
    """Services live in-process; one worker thread serializes batches."""

    def __init__(self, services: Dict[str, TextToSQLService]) -> None:
        self._services = dict(services)
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serving-shard"
        )

    @property
    def domains(self) -> List[str]:
        return list(self._services)

    def service(self, domain: str) -> TextToSQLService:
        return self._services[domain]

    def submit_batch(self, domain: str, questions: Sequence[str]) -> "Future":
        return self._pool.submit(self._services[domain].ask_batch, list(questions))

    def lexicons(self) -> Dict[str, Set[str]]:
        return {
            domain: build_lexicon(service.database)
            for domain, service in self._services.items()
        }

    def metrics(self) -> Dict[str, Any]:
        return {
            domain: service.metrics()
            for domain, service in self._services.items()
        }

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# -- process-shard worker side -------------------------------------------------
# Module-level state: each ProcessShard worker process builds its
# services once in the initializer; the entry points below close over
# nothing, so everything submitted to the pool pickles trivially.

_WORKER_SERVICES: Dict[str, TextToSQLService] = {}


def _init_worker(specs: Tuple[DomainSpec, ...]) -> None:
    for spec in specs:
        _WORKER_SERVICES[spec.domain] = build_service(spec)


def _worker_ask_batch(domain: str, questions: List[str]):
    return _WORKER_SERVICES[domain].ask_batch(questions)


def _worker_lexicons() -> Dict[str, Set[str]]:
    return {
        domain: build_lexicon(service.database)
        for domain, service in _WORKER_SERVICES.items()
    }


def _worker_metrics() -> Dict[str, Any]:
    return {
        domain: service.metrics() for domain, service in _WORKER_SERVICES.items()
    }


class ProcessShard:
    """Services live in one dedicated worker process (its own GIL).

    The pool has exactly one worker, so a shard's batches serialize in
    submission order — the same execution model as :class:`ThreadShard`,
    scaled out to real CPU parallelism across shards.
    """

    def __init__(self, specs: Sequence[DomainSpec]) -> None:
        self._specs = tuple(specs)
        self._pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker,
            initargs=(self._specs,),
        )

    @property
    def domains(self) -> List[str]:
        return [spec.domain for spec in self._specs]

    def submit_batch(self, domain: str, questions: Sequence[str]) -> "Future":
        return self._pool.submit(_worker_ask_batch, domain, list(questions))

    def lexicons(self) -> Dict[str, Set[str]]:
        return self._pool.submit(_worker_lexicons).result()

    def metrics(self) -> Dict[str, Any]:
        return self._pool.submit(_worker_metrics).result()

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
