"""Asyncio serving tier: sharded workers, single-flight, backpressure.

The scale-out layer over :mod:`repro.deployment`: one event loop
admits (token-bucket quotas), routes (``DomainRouter`` lexicons),
coalesces (single-flight on in-flight identical questions) and batches
requests onto per-domain shard workers — threads or processes.  See
``docs/ARCHITECTURE.md`` ("Serving tier") and
``scripts/bench_serving.py`` for the open-loop load benchmark.
"""

from .loadgen import (
    LoadReport,
    max_sustainable_qps,
    poisson_arrivals,
    question_stream,
    run_open_loop,
    summarize,
)
from .quota import QuotaPolicy, TokenBucket
from .service import (
    DEFAULT_TENANT,
    AsyncTextToSQLService,
    Overloaded,
    ServingResponse,
)
from .shards import (
    DomainSpec,
    ProcessShard,
    ThreadShard,
    assign_shards,
    build_service,
)

__all__ = [
    "AsyncTextToSQLService",
    "DEFAULT_TENANT",
    "DomainSpec",
    "LoadReport",
    "Overloaded",
    "ProcessShard",
    "QuotaPolicy",
    "ServingResponse",
    "ThreadShard",
    "TokenBucket",
    "assign_shards",
    "build_service",
    "max_sustainable_qps",
    "poisson_arrivals",
    "question_stream",
    "run_open_loop",
    "summarize",
]
