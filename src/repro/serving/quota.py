"""Admission control: per-tenant token buckets.

The serving tier sheds load *before* it queues — an over-quota tenant
gets a typed :class:`~repro.serving.service.Overloaded` response
immediately instead of a slot in a queue that will only grow.  Buckets
refill continuously (``rate`` tokens/second up to ``burst``), so a
tenant that pauses earns credit back without any background task.

The clock is injectable: tests drive a fake monotonic clock and every
admission decision becomes deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

Clock = Callable[[], float]


class TokenBucket:
    """Continuous-refill token bucket (thread-safe, lock per bucket)."""

    def __init__(
        self, rate: float, burst: float, clock: Clock = time.monotonic
    ) -> None:
        if rate < 0:
            raise ValueError(f"refill rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst capacity must be positive, got {burst}")
        self.rate = float(rate)
        self.capacity = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have accrued (0 if available now)."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            if self.rate == 0:
                return float("inf")
            return deficit / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class QuotaPolicy:
    """Per-tenant buckets, created on first sight.

    ``rate``/``burst`` are the defaults for unknown tenants; named
    tenants can be pinned to their own limits via ``overrides`` (e.g.
    a partner tenant with a higher ceiling, or an abusive one clamped
    down).  ``admit`` is the single entry point the serving tier calls.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._overrides = dict(overrides or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(tenant, (self.rate, self.burst))
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str, tokens: float = 1.0) -> Tuple[bool, float]:
        """(admitted, retry_after_seconds) for one request by ``tenant``."""
        bucket = self.bucket(tenant)
        if bucket.try_acquire(tokens):
            return True, 0.0
        return False, bucket.retry_after(tokens)

    def tenants(self) -> Dict[str, float]:
        """tenant -> remaining tokens (observability)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: bucket.tokens for tenant, bucket in buckets.items()}
