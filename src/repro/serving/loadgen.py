"""Open-loop Poisson load generation for the serving tier.

*Open loop* means arrival times are fixed up front (a Poisson process:
exponential inter-arrival gaps at the offered rate) and every request
fires at its scheduled instant **regardless of how many are still in
flight**.  A closed-loop generator — issue, await, issue — caps the
offered load at the service's own throughput and hides queueing
collapse entirely (the coordinated-omission trap); the open loop is
what exposes p99 growth and shedding as the offered rate crosses
capacity.

Question streams come from :func:`repro.domains.logs.synthesize_logs`,
so the traffic has the deployment's shape: repeated questions (which
exercise single-flight and the response cache), misspellings, and
unanswerable noise — not a uniform shuffle of distinct queries.

``scripts/bench_serving.py`` drives these helpers to produce the
committed ``benchmarks/BENCH_serving.json`` artifact.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.deployment import percentile

from .service import AsyncTextToSQLService, ServingResponse


def poisson_arrivals(
    rate_qps: float, duration_seconds: float, seed: int = 0
) -> List[float]:
    """Arrival offsets (seconds from t0) of a Poisson process.

    Exponential inter-arrival gaps with mean ``1/rate_qps``, truncated
    at ``duration_seconds``.  Deterministic per seed.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate must be positive, got {rate_qps}")
    if duration_seconds <= 0:
        raise ValueError(f"duration must be positive, got {duration_seconds}")
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(rate_qps)
        if clock >= duration_seconds:
            return offsets
        offsets.append(clock)


def question_stream(
    domains: Sequence[str], size: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """``size`` ``(domain, question)`` pairs of deployment-shaped traffic.

    Each domain contributes a :func:`synthesize_logs` stream (repeats,
    misspellings and off-topic noise included); streams are interleaved
    by a seeded shuffle so consecutive requests hop across domains the
    way multi-tenant traffic does.
    """
    from repro.domains import load_domain
    from repro.domains.logs import synthesize_logs

    if not domains:
        raise ValueError("at least one domain is required")
    per_domain = -(-size // len(domains))  # ceil
    pairs: List[Tuple[str, str]] = []
    for domain in domains:
        instance = load_domain(domain, seed=seed or 2022)
        records = synthesize_logs(domain, instance.examples, per_domain, seed=seed)
        pairs.extend((domain, record.question) for record in records)
    random.Random(seed).shuffle(pairs)
    return pairs[:size]


@dataclass(frozen=True)
class LoadReport:
    """What one open-loop run measured."""

    offered_qps: float
    duration_seconds: float  # wall clock, first fire to last completion
    requests: int
    completed: int
    shed: int
    errors: int
    timeouts: int
    coalesced: int
    achieved_qps: float  # completions / wall clock
    shed_rate: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float

    def as_case(self) -> Dict[str, Any]:
        """The BENCH_serving.json case payload (times in ms)."""
        return {
            "offered_qps": round(self.offered_qps, 3),
            "achieved_qps": round(self.achieved_qps, 3),
            "requests": self.requests,
            "completed": self.completed,
            "shed_rate": round(self.shed_rate, 5),
            "coalesced": self.coalesced,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "p50_ms": round(self.p50_seconds * 1000.0, 4),
            "p95_ms": round(self.p95_seconds * 1000.0, 4),
            "p99_ms": round(self.p99_seconds * 1000.0, 4),
            "mean_ms": round(self.mean_seconds * 1000.0, 4),
        }


def summarize(
    responses: Sequence[ServingResponse],
    offered_qps: float,
    wall_seconds: float,
) -> LoadReport:
    """Aggregate one run's responses into a :class:`LoadReport`."""
    completed = [r for r in responses if r.status == "ok"]
    latencies = sorted(r.latency_seconds for r in completed)
    count = len(latencies)
    shed = sum(1 for r in responses if r.status == "overloaded")
    return LoadReport(
        offered_qps=offered_qps,
        duration_seconds=wall_seconds,
        requests=len(responses),
        completed=count,
        shed=shed,
        errors=sum(1 for r in responses if r.status == "error"),
        timeouts=sum(1 for r in responses if r.status == "timeout"),
        coalesced=sum(1 for r in responses if r.coalesced),
        achieved_qps=count / wall_seconds if wall_seconds else 0.0,
        shed_rate=shed / len(responses) if responses else 0.0,
        p50_seconds=percentile(latencies, 0.50),
        p95_seconds=percentile(latencies, 0.95),
        p99_seconds=percentile(latencies, 0.99),
        mean_seconds=sum(latencies) / count if count else 0.0,
    )


async def run_open_loop(
    serving: AsyncTextToSQLService,
    traffic: Sequence[Tuple[str, str]],
    arrivals: Sequence[float],
    tenants: Sequence[str] = ("default",),
    explicit_domain: bool = False,
    offered_qps: Optional[float] = None,
) -> LoadReport:
    """Fire ``traffic`` at the scheduled ``arrivals``, open loop.

    Requests beyond ``len(traffic)`` wrap around the stream; tenants
    round-robin over ``tenants``.  ``explicit_domain=True`` bypasses
    lexicon routing and dispatches each question to its known domain
    (isolates serving cost from routing cost).
    """
    if not traffic:
        raise ValueError("traffic stream is empty")
    await serving.start()
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(offset: float, index: int) -> ServingResponse:
        delay = offset - (loop.time() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        domain, question = traffic[index % len(traffic)]
        return await serving.ask(
            question,
            tenant=tenants[index % len(tenants)],
            domain=domain if explicit_domain else None,
        )

    tasks = [
        asyncio.ensure_future(fire(offset, index))
        for index, offset in enumerate(arrivals)
    ]
    responses = list(await asyncio.gather(*tasks))
    wall = loop.time() - start
    if offered_qps is None:
        # derive from the schedule when the caller has no nominal rate
        offered_qps = len(arrivals) / max(arrivals[-1], 1e-9) if arrivals else 0.0
    return summarize(responses, offered_qps=offered_qps, wall_seconds=wall)


def max_sustainable_qps(
    reports: Sequence[LoadReport],
    max_shed_rate: float = 0.01,
    p99_slo_seconds: Optional[float] = None,
) -> float:
    """Highest offered rate that stayed within the SLO.

    A rate *sustains* when its shed rate is at most ``max_shed_rate``
    and (if given) its p99 stays under ``p99_slo_seconds``.  Returns
    0.0 when no measured rate qualified.
    """
    best = 0.0
    for report in reports:
        if report.shed_rate > max_shed_rate:
            continue
        if p99_slo_seconds is not None and report.p99_seconds > p99_slo_seconds:
            continue
        best = max(best, report.offered_qps)
    return best
