"""The asyncio serving tier: sharded, coalescing, load-shedding.

:class:`AsyncTextToSQLService` is the front end the "millions of
users" north star asks for.  One event loop owns admission, routing
and batching; the per-domain services run behind it on shard workers
(threads or processes, see :mod:`repro.serving.shards`).  The request
path is:

1. **Admission** — per-tenant token buckets
   (:class:`~repro.serving.quota.QuotaPolicy`).  Over quota, or with
   the global pending ceiling reached, the request is *shed* with a
   typed :class:`Overloaded` response carrying ``retry_after`` —
   never queued, never hung.
2. **Routing** — :class:`~repro.deployment.routing.DomainRouter`
   lexicon dispatch (or an explicit ``domain=``).  The router runs in
   the front end even when the databases live in worker processes:
   shards export their routing lexicons at startup.
3. **Single-flight** — identical in-flight ``(domain, question)``
   pairs coalesce onto one future; only the first arrival reaches a
   worker, every waiter gets the same
   :class:`~repro.deployment.service.ServiceResponse` (the async
   analogue of the response cache, covering the window *before* the
   cache is filled).
4. **Batching** — a per-shard dispatcher drains its queue up to
   ``max_batch`` requests and ships them as one
   :meth:`~repro.deployment.service.TextToSQLService.ask_batch` call,
   which executes the batch's SQL through one ``execute_many``.

All mutable state is owned by the event loop; ``metrics()`` reads are
safe from any thread.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.deployment import (
    DomainRouter,
    ServiceResponse,
    UnroutableQuestionError,
    percentile,
)
from repro.obs.tracing import NOOP_SPAN

from .quota import QuotaPolicy
from .shards import DomainSpec, ProcessShard, ThreadShard, assign_shards, build_service

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ServingResponse:
    """What the async tier returns for one request."""

    question: str
    tenant: str
    domain: Optional[str]
    status: str  # "ok" | "overloaded" | "timeout" | "error"
    response: Optional[ServiceResponse] = None
    latency_seconds: float = 0.0  # wall clock, admission -> completion
    coalesced: bool = False  # rode another request's in-flight future
    retry_after: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        return self.status == "overloaded"

    @property
    def answered(self) -> bool:
        return self.response is not None and self.response.answered


@dataclass(frozen=True)
class Overloaded(ServingResponse):
    """Typed shed response: admission control refused the request.

    ``reason`` is ``"tenant_quota"`` (token bucket empty) or
    ``"queue_full"`` (global pending ceiling reached); ``retry_after``
    tells the client when trying again can succeed.
    """

    status: str = "overloaded"
    reason: str = "tenant_quota"


class _Pending:
    """One enqueued request: (routing key, the future its askers await)."""

    __slots__ = ("domain", "question", "future")

    def __init__(self, domain: str, question: str, future: "asyncio.Future") -> None:
        self.domain = domain
        self.question = question
        self.future = future


class AsyncTextToSQLService:
    """Asyncio front end over sharded per-domain Text-to-SQL services."""

    def __init__(
        self,
        shards: Sequence[Any],
        router: Optional[DomainRouter] = None,
        *,
        max_batch: int = 16,
        max_pending: int = 256,
        quota: Optional[QuotaPolicy] = None,
        single_flight: bool = True,
        request_timeout: Optional[float] = None,
        latency_window: int = 8192,
        tracer: Optional[Any] = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self._shards = list(shards)
        self._domain_shard: Dict[str, int] = {}
        for index, shard in enumerate(self._shards):
            for domain in shard.domains:
                if domain in self._domain_shard:
                    raise ValueError(f"domain {domain!r} assigned to two shards")
                self._domain_shard[domain] = index
        if router is None:
            router = DomainRouter()
            for shard in self._shards:
                lexicons = shard.lexicons()
                for domain in shard.domains:
                    # thread shards keep an in-process service reachable
                    # through the router; process shards register
                    # lexicon-only (remote) domains
                    service = (
                        shard.service(domain) if hasattr(shard, "service") else None
                    )
                    router.add_domain(domain, service, lexicon=lexicons[domain])
        self.router = router
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.quota = quota
        self.single_flight = single_flight
        self.request_timeout = request_timeout
        # Optional repro.obs.Tracer: serving.ask spans with
        # admission/route/queued children, labeled per tenant+domain.
        self.tracer = tracer
        # Optional registry-backed wall-latency histogram, attached by
        # repro.obs.bind_serving.
        self._latency_hist: Optional[Any] = None
        # -- event-loop-owned state --------------------------------------
        self._queues: List["asyncio.Queue[_Pending]"] = []
        self._dispatchers: List["asyncio.Task"] = []
        self._inflight: Dict[Tuple[str, str], "asyncio.Future"] = {}
        self._pending = 0
        self._started = False
        # -- counters ----------------------------------------------------
        self._admitted = 0
        self._completed = 0
        self._coalesced = 0
        self._shed_quota = 0
        self._shed_queue = 0
        self._timeouts = 0
        self._errors = 0
        self._batches = 0
        self._batched_questions = 0
        self._max_batch_size = 0
        self._per_domain: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_router(
        cls, router: DomainRouter, shard_count: int = 1, **kwargs
    ) -> "AsyncTextToSQLService":
        """Shard an existing (thread-based) router's services."""
        assignment = assign_shards(router.domains, shard_count)
        shards = [
            ThreadShard({domain: router.service(domain) for domain in group})
            for group in assignment
        ]
        return cls(shards, router=router, **kwargs)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[DomainSpec],
        shard_count: int = 1,
        workers: str = "thread",
        **kwargs,
    ) -> "AsyncTextToSQLService":
        """Build shards from picklable recipes (see :class:`DomainSpec`).

        ``workers="thread"`` keeps every service in-process behind
        per-shard worker threads; ``workers="process"`` gives each shard
        a dedicated worker process with its own interpreter and GIL —
        the deployment shape, and what ``scripts/bench_serving.py``
        measures.
        """
        if workers not in ("thread", "process"):
            raise ValueError(
                f"workers must be 'thread' or 'process', got {workers!r}"
            )
        by_domain = {spec.domain: spec for spec in specs}
        if len(by_domain) != len(specs):
            raise ValueError("duplicate domain in specs")
        assignment = assign_shards([spec.domain for spec in specs], shard_count)
        if workers == "process":
            shards: List[Any] = [
                ProcessShard([by_domain[domain] for domain in group])
                for group in assignment
            ]
        else:
            shards = [
                ThreadShard(
                    {domain: build_service(by_domain[domain]) for domain in group}
                )
                for group in assignment
            ]
        return cls(shards, **kwargs)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Spin up one dispatcher task per shard (idempotent)."""
        if self._started:
            return
        loop = asyncio.get_running_loop()
        self._queues = [asyncio.Queue() for _ in self._shards]
        self._dispatchers = [
            loop.create_task(self._dispatch(index), name=f"serving-dispatch-{index}")
            for index in range(len(self._shards))
        ]
        self._started = True

    async def stop(self) -> None:
        """Cancel dispatchers and fail whatever was still queued."""
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        for queue in self._queues:
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._resolve(item, error=RuntimeError("serving tier stopped"))
        self._queues = []
        self._started = False

    def close(self) -> None:
        """Shut down shard workers (call after :meth:`stop`)."""
        for shard in self._shards:
            shard.close()

    async def __aenter__(self) -> "AsyncTextToSQLService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
        self.close()

    # -- serving -----------------------------------------------------------
    def _span(self, name: str, **labels: Any):
        """A tracer span when tracing is on, the shared no-op otherwise."""
        tracer = self.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(name, **labels)

    async def ask(
        self,
        question: str,
        tenant: str = DEFAULT_TENANT,
        domain: Optional[str] = None,
    ) -> ServingResponse:
        """Serve one question; resolves to a typed response, never hangs.

        Raises :class:`UnroutableQuestionError` only for an explicitly
        named unknown domain (caller error); every load condition comes
        back as a response (``overloaded`` / ``timeout`` / ``error``).
        """
        with self._span("serving.ask", tenant=tenant) as span:
            response = await self._ask(question, tenant, domain, span)
            span.set_label("status", response.status)
            if response.domain is not None:
                span.set_label("domain", response.domain)
            return response

    async def _ask(
        self,
        question: str,
        tenant: str,
        domain: Optional[str],
        span,
    ) -> ServingResponse:
        await self.start()
        start = time.perf_counter()
        if self.quota is not None:
            admitted, retry_after = self.quota.admit(tenant)
            if not admitted:
                self._shed_quota += 1
                span.set_label("shed", "tenant_quota")
                return Overloaded(
                    question=question,
                    tenant=tenant,
                    domain=domain,
                    reason="tenant_quota",
                    retry_after=retry_after,
                )
        if domain is not None:
            if domain not in self._domain_shard:
                known = ", ".join(sorted(self._domain_shard))
                raise UnroutableQuestionError(
                    f"unknown domain {domain!r} (served: {known})"
                )
            name = domain
        else:
            with self._span("serving.route") as route_span:
                name, _score = self.router.route(question)
                route_span.set_label("domain", name)
        self._admitted += 1
        self._per_domain[name] = self._per_domain.get(name, 0) + 1
        key = (name, question)
        if self.single_flight:
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                span.set_label("coalesced", True)
                with self._span("serving.queued", domain=name):
                    return await self._await_outcome(
                        existing, question, tenant, name, start, coalesced=True
                    )
        if self._pending >= self.max_pending:
            self._shed_queue += 1
            span.set_label("shed", "queue_full")
            return Overloaded(
                question=question,
                tenant=tenant,
                domain=name,
                reason="queue_full",
                retry_after=None,
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        if self.single_flight:
            self._inflight[key] = future
        self._pending += 1
        self._queues[self._domain_shard[name]].put_nowait(
            _Pending(name, question, future)
        )
        with self._span("serving.queued", domain=name):
            return await self._await_outcome(
                future, question, tenant, name, start, coalesced=False
            )

    async def ask_many(
        self,
        questions: Sequence[str],
        tenant: str = DEFAULT_TENANT,
        domain: Optional[str] = None,
    ) -> List[ServingResponse]:
        """Serve a burst concurrently; responses in question order."""
        return list(
            await asyncio.gather(
                *(self.ask(question, tenant=tenant, domain=domain) for question in questions)
            )
        )

    async def _await_outcome(
        self,
        future: "asyncio.Future",
        question: str,
        tenant: str,
        domain: str,
        start: float,
        coalesced: bool,
    ) -> ServingResponse:
        try:
            if self.request_timeout is not None:
                # shield: a timed-out waiter must not cancel the shared
                # single-flight future other requests are riding on
                response = await asyncio.wait_for(
                    asyncio.shield(future), self.request_timeout
                )
            else:
                response = await future
        except asyncio.TimeoutError:
            self._timeouts += 1
            return ServingResponse(
                question=question,
                tenant=tenant,
                domain=domain,
                status="timeout",
                latency_seconds=time.perf_counter() - start,
                coalesced=coalesced,
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # worker/shard failure: typed, not raised
            self._errors += 1
            return ServingResponse(
                question=question,
                tenant=tenant,
                domain=domain,
                status="error",
                latency_seconds=time.perf_counter() - start,
                coalesced=coalesced,
                error=str(exc),
            )
        elapsed = time.perf_counter() - start
        self._completed += 1
        self._latencies.append(elapsed)
        hist = self._latency_hist
        if hist is not None:
            hist.observe(elapsed)
        return ServingResponse(
            question=question,
            tenant=tenant,
            domain=domain,
            status="ok",
            response=response,
            latency_seconds=elapsed,
            coalesced=coalesced,
        )

    # -- dispatch ----------------------------------------------------------
    async def _dispatch(self, shard_index: int) -> None:
        """Drain one shard's queue into ask_batch calls, forever."""
        queue = self._queues[shard_index]
        shard = self._shards[shard_index]
        while True:
            first = await queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups: Dict[str, List[_Pending]] = {}
            for item in batch:
                groups.setdefault(item.domain, []).append(item)
            for domain, items in groups.items():
                questions = [item.question for item in items]
                self._batches += 1
                self._batched_questions += len(questions)
                self._max_batch_size = max(self._max_batch_size, len(questions))
                try:
                    # batch spans are their own traces: the dispatcher
                    # task has no request context, and one batch serves
                    # many requests
                    with self._span(
                        "serving.batch",
                        domain=domain,
                        shard=shard_index,
                        size=len(questions),
                    ):
                        responses = await asyncio.wrap_future(
                            shard.submit_batch(domain, questions)
                        )
                except asyncio.CancelledError:
                    for item in items:
                        self._resolve(
                            item, error=RuntimeError("serving tier stopped")
                        )
                    raise
                except Exception as exc:
                    for item in items:
                        self._resolve(item, error=exc)
                    continue
                for item, response in zip(items, responses):
                    self._resolve(item, response=response)

    def _resolve(
        self,
        item: _Pending,
        response: Optional[ServiceResponse] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self._pending -= 1
        self._inflight.pop((item.domain, item.question), None)
        if item.future.done():
            return
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(response)

    # -- observability -----------------------------------------------------
    def metrics(self, include_shards: bool = False) -> Dict[str, Any]:
        """Front-end counters, wall-latency percentiles, batch shape.

        ``include_shards=True`` adds every shard's per-domain service
        metrics (a worker round-trip for process shards — keep it off
        on the hot path).
        """
        latencies = sorted(self._latencies)
        count = len(latencies)
        shed = self._shed_quota + self._shed_queue
        requests = self._admitted + shed
        out: Dict[str, Any] = {
            "requests": requests,
            "admitted": self._admitted,
            "completed": self._completed,
            "coalesced": self._coalesced,
            "shed": {
                "tenant_quota": self._shed_quota,
                "queue_full": self._shed_queue,
                "total": shed,
            },
            "shed_rate": shed / requests if requests else 0.0,
            "timeouts": self._timeouts,
            "errors": self._errors,
            "pending": self._pending,
            "inflight_keys": len(self._inflight),
            "batches": self._batches,
            "batched_questions": self._batched_questions,
            "mean_batch_size": (
                self._batched_questions / self._batches if self._batches else 0.0
            ),
            "max_batch_size": self._max_batch_size,
            "questions_per_domain": dict(self._per_domain),
            "shard_count": len(self._shards),
            "domains": {
                domain: index for domain, index in sorted(self._domain_shard.items())
            },
            "wall_latency": {
                "count": count,
                "mean_seconds": sum(latencies) / count if count else 0.0,
                "p50_seconds": percentile(latencies, 0.50),
                "p95_seconds": percentile(latencies, 0.95),
                "p99_seconds": percentile(latencies, 0.99),
            },
        }
        if self.quota is not None:
            out["tenants"] = self.quota.tenants()
        if include_shards:
            out["shards"] = [shard.metrics() for shard in self._shards]
        return out
