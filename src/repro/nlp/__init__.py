"""Lightweight NLP substrate.

Stands in for the paper's SentenceBERT (similarity) and BERTopic
(clustering) — see DESIGN.md §2 for the substitution argument.  All
functions are deterministic and dependency-free.
"""

from .embedding import cosine, embed, embed_all, similarity
from .clustering import Cluster, cluster_texts
from .sampling import (
    diversity_sample,
    hardness_uniform_sample,
    train_test_split,
)

__all__ = [
    "Cluster",
    "cluster_texts",
    "cosine",
    "diversity_sample",
    "embed",
    "embed_all",
    "hardness_uniform_sample",
    "similarity",
    "train_test_split",
]
