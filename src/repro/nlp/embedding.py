"""Hashed n-gram sentence embeddings.

A deterministic, offline replacement for SentenceBERT: sentences map to
L2-normalized vectors of hashed word-unigram, word-bigram and character
trigram features.  Two questions that share phrasing and entities score
high cosine similarity; paraphrases of the same intent land close;
questions about different topics land far apart — which is all the
paper's pipeline needs (duplicate folding at ≥0.96, diversity sampling
at <0.93, labeler assistance, retrieval in the seq2seq cores).
"""

from __future__ import annotations

import hashlib
import math
import re
from typing import Dict, Iterable, List, Sequence

DIMENSIONS = 256

_WORD_RE = re.compile(r"[a-z0-9]+")

#: feature-class weights: words dominate, trigrams add fuzz-tolerance
_WORD_WEIGHT = 1.0
_BIGRAM_WEIGHT = 0.8
_TRIGRAM_WEIGHT = 0.4


def tokenize(text: str) -> List[str]:
    return _WORD_RE.findall(text.lower())


def _bucket(feature: str) -> int:
    digest = hashlib.blake2s(feature.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % DIMENSIONS


def embed(text: str) -> List[float]:
    """Embed one sentence into a normalized ``DIMENSIONS``-vector."""
    vector = [0.0] * DIMENSIONS
    words = tokenize(text)
    for word in words:
        vector[_bucket("w:" + word)] += _WORD_WEIGHT
    for first, second in zip(words, words[1:]):
        vector[_bucket(f"b:{first}_{second}")] += _BIGRAM_WEIGHT
    joined = " ".join(words)
    for index in range(len(joined) - 2):
        vector[_bucket("t:" + joined[index : index + 3])] += _TRIGRAM_WEIGHT
    norm = math.sqrt(sum(value * value for value in vector))
    if norm == 0.0:
        return vector
    return [value / norm for value in vector]


def embed_all(texts: Iterable[str]) -> List[List[float]]:
    cache: Dict[str, List[float]] = {}
    vectors = []
    for text in texts:
        if text not in cache:
            cache[text] = embed(text)
        vectors.append(cache[text])
    return vectors


def cosine(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two normalized vectors (plain dot product)."""
    return sum(x * y for x, y in zip(a, b))


def similarity(text_a: str, text_b: str) -> float:
    """Convenience: embed both texts and return their cosine."""
    return cosine(embed(text_a), embed(text_b))
