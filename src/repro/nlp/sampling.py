"""Dataset sampling strategies (paper Section 6.1).

Two-stage construction of the benchmark:

1. :func:`diversity_sample` — cluster the filtered questions by topic,
   keep each cluster's centroid question plus every member *below* a
   similarity threshold (0.93) to the centroid.  Near-duplicates such as
   "Who won the world cup in 2014?" / "… in 2018?" collapse to one
   labeled representative.
2. :func:`hardness_uniform_sample` — uniform sampling over Spider
   hardness levels down to 400 NL/SQL pairs.

Plus the stratified :func:`train_test_split` (300 train / 100 test).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

from .clustering import cluster_texts
from .embedding import cosine, embed_all

ItemT = TypeVar("ItemT")


def diversity_sample(
    texts: Sequence[str],
    similarity_threshold: float = 0.93,
    cluster_threshold: float = 0.55,
) -> List[int]:
    """Indices of a diversity-preserving subset of ``texts``."""
    vectors = embed_all(texts)
    clusters = cluster_texts(texts, threshold=cluster_threshold, vectors=vectors)
    keep: List[int] = []
    for cluster in clusters:
        representative = cluster.centroid_member(vectors)
        keep.append(representative)
        centroid = cluster.centroid
        for index in cluster.member_indices:
            if index == representative:
                continue
            if cosine(vectors[index], centroid) < similarity_threshold:
                keep.append(index)
    return sorted(set(keep))


def hardness_uniform_sample(
    items: Sequence[ItemT],
    hardness_of: Callable[[ItemT], Hashable],
    size: int,
    seed: int = 0,
) -> List[ItemT]:
    """Sample ``size`` items uniformly across hardness levels.

    Levels that cannot fill their quota are backfilled from the levels
    with the most remaining items — this is why the paper's "uniform"
    sample still has mean hardness ≈ 3: there are simply not enough
    easy real-user queries to fill the easy quota.
    """
    rng = random.Random(seed)
    by_level: Dict[Hashable, List[ItemT]] = {}
    for item in items:
        by_level.setdefault(hardness_of(item), []).append(item)
    for bucket in by_level.values():
        rng.shuffle(bucket)
    levels = sorted(by_level, key=str)
    quota = size // max(1, len(levels))
    chosen: List[ItemT] = []
    for level in levels:
        bucket = by_level[level]
        take = min(quota, len(bucket))
        chosen.extend(bucket[:take])
        del bucket[:take]
    # Backfill from the fullest remaining buckets.
    while len(chosen) < size:
        remaining = [level for level in levels if by_level[level]]
        if not remaining:
            break
        fullest = max(remaining, key=lambda level: len(by_level[level]))
        chosen.append(by_level[fullest].pop())
    rng.shuffle(chosen)
    return chosen[:size]


def train_test_split(
    items: Sequence[ItemT],
    test_size: int,
    stratify_by: Optional[Callable[[ItemT], Hashable]] = None,
    seed: int = 0,
) -> Tuple[List[ItemT], List[ItemT]]:
    """Split into (train, test), optionally stratified.

    Stratification keeps the test hardness distribution representative
    of the labeled pool, as in the paper's 300/100 split.
    """
    rng = random.Random(seed)
    if test_size >= len(items):
        raise ValueError("test_size must be smaller than the item count")
    if stratify_by is None:
        pool = list(items)
        rng.shuffle(pool)
        return pool[test_size:], pool[:test_size]
    by_level: Dict[Hashable, List[ItemT]] = {}
    for item in items:
        by_level.setdefault(stratify_by(item), []).append(item)
    test: List[ItemT] = []
    train: List[ItemT] = []
    fraction = test_size / len(items)
    levels = sorted(by_level, key=str)
    for level in levels:
        bucket = by_level[level]
        rng.shuffle(bucket)
        take = round(len(bucket) * fraction)
        test.extend(bucket[:take])
        train.extend(bucket[take:])
    # Rounding drift: move items between splits until sizes are exact.
    rng.shuffle(train)
    while len(test) < test_size:
        test.append(train.pop())
    while len(test) > test_size:
        train.append(test.pop())
    rng.shuffle(test)
    return train, test
