"""Topic clustering over question embeddings (BERTopic substitute).

Greedy leader clustering: each question joins the most similar existing
cluster if the similarity to that cluster's centroid exceeds the
threshold, otherwise it founds a new cluster.  Deterministic in input
order, no training, and produces exactly what the paper's sampling
needs: dense clusters of near-paraphrases with a representative
centroid question.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .embedding import cosine, embed_all


@dataclass
class Cluster:
    """One topic cluster."""

    cluster_id: int
    member_indices: List[int] = field(default_factory=list)
    _sum: List[float] = field(default_factory=list, repr=False)

    def add(self, index: int, vector: Sequence[float]) -> None:
        self.member_indices.append(index)
        if not self._sum:
            self._sum = list(vector)
        else:
            for position, value in enumerate(vector):
                self._sum[position] += value

    @property
    def centroid(self) -> List[float]:
        norm = math.sqrt(sum(value * value for value in self._sum))
        if norm == 0.0:
            return list(self._sum)
        return [value / norm for value in self._sum]

    def __len__(self) -> int:
        return len(self.member_indices)

    def centroid_member(self, vectors: Sequence[Sequence[float]]) -> int:
        """Index of the member closest to the centroid."""
        center = self.centroid
        return max(self.member_indices, key=lambda i: cosine(vectors[i], center))


def cluster_texts(
    texts: Sequence[str],
    threshold: float = 0.55,
    vectors: Optional[Sequence[Sequence[float]]] = None,
) -> List[Cluster]:
    """Cluster ``texts`` by embedding similarity.

    ``threshold`` controls granularity: higher values yield more, denser
    clusters.  The default groups paraphrases of the same intent kind
    while separating topics.
    """
    if vectors is None:
        vectors = embed_all(texts)
    clusters: List[Cluster] = []
    for index, vector in enumerate(vectors):
        best: Optional[Cluster] = None
        best_similarity = threshold
        for cluster in clusters:
            score = cosine(vector, cluster.centroid)
            if score >= best_similarity:
                best = cluster
                best_similarity = score
        if best is None:
            best = Cluster(cluster_id=len(clusters))
            clusters.append(best)
        best.add(index, vector)
    return clusters
