"""FootballDB: the paper's dataset, generated synthetically.

Public API::

    from repro.footballdb import load_all, build_universe

    football = load_all(seed=2022)
    v3 = football["v3"]
    v3.execute("SELECT count(*) FROM plays_match")

Modules: :mod:`universe` (entity generation), :mod:`schema_v1` /
:mod:`schema_v2` / :mod:`schema_v3` (the three data models of Figures
3, 5 and 6), :mod:`loader` (materialization), :mod:`stats` (Table 2),
:mod:`morph` (seeded derivation of unlimited further data models).
"""

from .loader import VERSIONS, FootballDB, build_universe, load_all, load_version
from .morph import (
    DEFAULT_OPERATORS,
    MorphError,
    MorphOperator,
    MorphStep,
    MorphedModel,
    SchemaMorpher,
    result_signature,
    verify_morph,
)
from .stats import DataModelStats, compute_stats, table2
from .universe import (
    NATIONAL_TEAMS,
    STAGES,
    WORLD_CUP_HISTORY,
    Universe,
    UniverseGenerator,
)

__all__ = [
    "DEFAULT_OPERATORS",
    "DataModelStats",
    "FootballDB",
    "MorphError",
    "MorphOperator",
    "MorphStep",
    "MorphedModel",
    "NATIONAL_TEAMS",
    "STAGES",
    "SchemaMorpher",
    "Universe",
    "UniverseGenerator",
    "VERSIONS",
    "WORLD_CUP_HISTORY",
    "build_universe",
    "compute_stats",
    "load_all",
    "load_version",
    "result_signature",
    "table2",
    "verify_morph",
]
