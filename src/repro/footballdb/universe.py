"""The FootballDB universe: one self-consistent World Cup history.

The paper's dataset was collected from Kaggle, Wikidata and web scraping
(Section 3.1).  Offline, we generate a synthetic universe instead, with
two fidelity rules:

1. **Public macro-history is real.**  Tournament years, hosts, podium
   places (winner/runner-up/third/fourth) and participating-nation names
   match the historical record, because the evaluation questions
   reference them ("Who won the world cup in 2014?" must answer
   "Germany").  The famous 2014 semi-final (Germany 7:1 Brazil) is
   seeded explicitly — it is the running example of the paper's
   Figure 4.
2. **Micro-detail is synthetic but internally consistent.**  Players,
   coaches, clubs, leagues, match scores, goal scorers and cards are
   generated deterministically from a seed; aggregate columns (e.g. a
   squad member's goal tally) are *derived from* the event rows, so
   every query answer is consistent no matter which data model and join
   path a system uses.

Entity counts track the paper's Table 2/Section 3.1 inventory:
22 world cups, 86 national teams, ~8.9K players, 1,874 clubs,
89 leagues, 1,966 coaches, ~100K total rows per data model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import naming

# ---------------------------------------------------------------------------
# Historical scaffolding (public record)
# ---------------------------------------------------------------------------

#: (year, host, team_count, winner, runner_up, third, fourth)
WORLD_CUP_HISTORY: List[Tuple[int, str, int, str, str, str, str]] = [
    (1930, "Uruguay", 13, "Uruguay", "Argentina", "United States", "Yugoslavia"),
    (1934, "Italy", 16, "Italy", "Czechoslovakia", "Germany", "Austria"),
    (1938, "France", 15, "Italy", "Hungary", "Brazil", "Sweden"),
    (1950, "Brazil", 13, "Uruguay", "Brazil", "Sweden", "Spain"),
    (1954, "Switzerland", 16, "Germany", "Hungary", "Austria", "Uruguay"),
    (1958, "Sweden", 16, "Brazil", "Sweden", "France", "Germany"),
    (1962, "Chile", 16, "Brazil", "Czechoslovakia", "Chile", "Yugoslavia"),
    (1966, "England", 16, "England", "Germany", "Portugal", "Soviet Union"),
    (1970, "Mexico", 16, "Brazil", "Italy", "Germany", "Uruguay"),
    (1974, "Germany", 16, "Germany", "Netherlands", "Poland", "Brazil"),
    (1978, "Argentina", 16, "Argentina", "Netherlands", "Brazil", "Italy"),
    (1982, "Spain", 24, "Italy", "Germany", "Poland", "France"),
    (1986, "Mexico", 24, "Argentina", "Germany", "France", "Belgium"),
    (1990, "Italy", 24, "Germany", "Argentina", "Italy", "England"),
    (1994, "United States", 24, "Brazil", "Italy", "Sweden", "Bulgaria"),
    (1998, "France", 32, "France", "Brazil", "Croatia", "Netherlands"),
    (2002, "South Korea", 32, "Brazil", "Germany", "Turkey", "South Korea"),
    (2006, "Germany", 32, "Italy", "France", "Germany", "Portugal"),
    (2010, "South Africa", 32, "Spain", "Netherlands", "Germany", "Uruguay"),
    (2014, "Brazil", 32, "Germany", "Argentina", "Netherlands", "Brazil"),
    (2018, "Russia", 32, "France", "Croatia", "Belgium", "England"),
    (2022, "Qatar", 32, "Argentina", "France", "Croatia", "Morocco"),
]

#: name -> (confederation, active_from, active_to); 86 nations including
#: former states, mirroring the paper's "86 national teams (including
#: former nations, e.g., the Soviet Union)".
NATIONAL_TEAMS: List[Tuple[str, str, int, int]] = [
    # UEFA
    ("Germany", "UEFA", 1930, 2100), ("Italy", "UEFA", 1930, 2100),
    ("France", "UEFA", 1930, 2100), ("England", "UEFA", 1930, 2100),
    ("Spain", "UEFA", 1930, 2100), ("Netherlands", "UEFA", 1930, 2100),
    ("Portugal", "UEFA", 1930, 2100), ("Belgium", "UEFA", 1930, 2100),
    ("Sweden", "UEFA", 1930, 2100), ("Switzerland", "UEFA", 1930, 2100),
    ("Austria", "UEFA", 1930, 2100), ("Hungary", "UEFA", 1930, 2100),
    ("Poland", "UEFA", 1930, 2100), ("Denmark", "UEFA", 1930, 2100),
    ("Romania", "UEFA", 1930, 2100), ("Bulgaria", "UEFA", 1930, 2100),
    ("Scotland", "UEFA", 1930, 2100), ("Northern Ireland", "UEFA", 1930, 2100),
    ("Wales", "UEFA", 1930, 2100), ("Ireland", "UEFA", 1930, 2100),
    ("Norway", "UEFA", 1930, 2100), ("Greece", "UEFA", 1930, 2100),
    ("Turkey", "UEFA", 1930, 2100), ("Israel", "UEFA", 1930, 2100),
    ("Iceland", "UEFA", 1930, 2100), ("Croatia", "UEFA", 1992, 2100),
    ("Serbia", "UEFA", 2006, 2100), ("Slovenia", "UEFA", 1992, 2100),
    ("Slovakia", "UEFA", 1993, 2100), ("Czech Republic", "UEFA", 1993, 2100),
    ("Ukraine", "UEFA", 1992, 2100), ("Russia", "UEFA", 1992, 2100),
    ("Bosnia and Herzegovina", "UEFA", 1992, 2100),
    ("Finland", "UEFA", 1930, 2100),
    ("Soviet Union", "UEFA", 1930, 1991), ("Yugoslavia", "UEFA", 1930, 1991),
    ("Czechoslovakia", "UEFA", 1930, 1992), ("East Germany", "UEFA", 1949, 1990),
    ("Serbia and Montenegro", "UEFA", 1992, 2005),
    # CONMEBOL
    ("Brazil", "CONMEBOL", 1930, 2100), ("Argentina", "CONMEBOL", 1930, 2100),
    ("Uruguay", "CONMEBOL", 1930, 2100), ("Chile", "CONMEBOL", 1930, 2100),
    ("Paraguay", "CONMEBOL", 1930, 2100), ("Peru", "CONMEBOL", 1930, 2100),
    ("Colombia", "CONMEBOL", 1930, 2100), ("Ecuador", "CONMEBOL", 1930, 2100),
    ("Bolivia", "CONMEBOL", 1930, 2100), ("Venezuela", "CONMEBOL", 1930, 2100),
    # CONCACAF
    ("Mexico", "CONCACAF", 1930, 2100), ("United States", "CONCACAF", 1930, 2100),
    ("Costa Rica", "CONCACAF", 1930, 2100), ("Honduras", "CONCACAF", 1930, 2100),
    ("El Salvador", "CONCACAF", 1930, 2100), ("Canada", "CONCACAF", 1930, 2100),
    ("Jamaica", "CONCACAF", 1930, 2100), ("Trinidad and Tobago", "CONCACAF", 1930, 2100),
    ("Haiti", "CONCACAF", 1930, 2100), ("Cuba", "CONCACAF", 1930, 2100),
    ("Panama", "CONCACAF", 1930, 2100),
    # AFC
    ("Japan", "AFC", 1930, 2100), ("South Korea", "AFC", 1930, 2100),
    ("Saudi Arabia", "AFC", 1930, 2100), ("Iran", "AFC", 1930, 2100),
    ("Iraq", "AFC", 1930, 2100), ("Qatar", "AFC", 1930, 2100),
    ("United Arab Emirates", "AFC", 1930, 2100), ("China", "AFC", 1930, 2100),
    ("North Korea", "AFC", 1930, 2100), ("Kuwait", "AFC", 1930, 2100),
    ("Australia", "AFC", 1930, 2100), ("Dutch East Indies", "AFC", 1930, 1949),
    # CAF
    ("Cameroon", "CAF", 1930, 2100), ("Nigeria", "CAF", 1930, 2100),
    ("Senegal", "CAF", 1930, 2100), ("Ghana", "CAF", 1930, 2100),
    ("Ivory Coast", "CAF", 1930, 2100), ("Morocco", "CAF", 1930, 2100),
    ("Tunisia", "CAF", 1930, 2100), ("Algeria", "CAF", 1930, 2100),
    ("Egypt", "CAF", 1930, 2100), ("South Africa", "CAF", 1930, 2100),
    ("Zaire", "CAF", 1930, 1996), ("Togo", "CAF", 1930, 2100),
    ("Angola", "CAF", 1930, 2100),
    # OFC
    ("New Zealand", "OFC", 1930, 2100),
]

#: Fill order for non-medalist participants (rough historical strength).
_STRENGTH_ORDER = [
    "Brazil", "Germany", "Italy", "Argentina", "France", "England", "Spain",
    "Netherlands", "Uruguay", "Sweden", "Mexico", "Belgium", "Hungary",
    "Switzerland", "Poland", "Austria", "Czechoslovakia", "Soviet Union",
    "Yugoslavia", "Portugal", "Chile", "United States", "Croatia", "Denmark",
    "Paraguay", "South Korea", "Japan", "Scotland", "Romania", "Bulgaria",
    "Russia", "Colombia", "Peru", "Cameroon", "Nigeria", "Morocco", "Turkey",
    "Costa Rica", "Ecuador", "Ghana", "Senegal", "Australia", "Ireland",
    "Northern Ireland", "Wales", "Norway", "Greece", "Tunisia", "Algeria",
    "Egypt", "Saudi Arabia", "Iran", "Serbia", "Ukraine", "Czech Republic",
    "Slovakia", "Slovenia", "Bosnia and Herzegovina", "East Germany",
    "Honduras", "El Salvador", "Canada", "Jamaica", "Trinidad and Tobago",
    "Haiti", "Cuba", "Panama", "Iraq", "Qatar", "United Arab Emirates",
    "China", "North Korea", "Kuwait", "South Africa", "Ivory Coast", "Togo",
    "Angola", "New Zealand", "Israel", "Iceland", "Bolivia", "Venezuela",
    "Zaire", "Dutch East Indies", "Serbia and Montenegro",
]

STAGES = ["group", "round_of_16", "quarter_final", "semi_final", "third_place", "final"]

GOAL_EVENTS = ("goal", "penalty", "own_goal")
CARD_EVENTS = ("yellow_card", "red_card")

_POSITIONS = ["goalkeeper", "defender", "midfielder", "forward"]
_POSITION_PLAN = (
    ["goalkeeper"] * 3 + ["defender"] * 7 + ["midfielder"] * 7 + ["forward"] * 6
)

#: target entity counts from the paper (Section 3.1)
TARGET_PLAYERS = 8891
TARGET_CLUBS = 1874
TARGET_LEAGUES = 89
TARGET_COACHES = 1966


# ---------------------------------------------------------------------------
# Entities
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NationalTeam:
    team_id: int
    name: str
    confederation: str
    active_from: int
    active_to: int
    founded: int


@dataclass(frozen=True)
class League:
    league_id: int
    name: str
    country: str
    division: int


@dataclass(frozen=True)
class Club:
    club_id: int
    name: str
    city: str
    country: str
    founded: int
    league_id: int


@dataclass(frozen=True)
class Coach:
    coach_id: int
    name: str
    nationality: str
    birth_year: int


@dataclass(frozen=True)
class Player:
    player_id: int
    full_name: str
    nickname: str
    birth_year: int
    position: str
    height_cm: int
    preferred_foot: str
    national_team_id: Optional[int]


@dataclass(frozen=True)
class Stadium:
    stadium_id: int
    name: str
    city: str
    country: str
    capacity: int
    opened: int


@dataclass(frozen=True)
class WorldCup:
    year: int
    host: str
    team_count: int
    winner_id: int
    runner_up_id: int
    third_id: int
    fourth_id: int


@dataclass(frozen=True)
class Match:
    match_id: int
    year: int
    stage: str
    group_name: Optional[str]
    stadium_id: int
    home_team_id: int
    away_team_id: int
    home_goals: int
    away_goals: int
    attendance: int

    def involves(self, team_id: int) -> bool:
        return team_id in (self.home_team_id, self.away_team_id)


@dataclass(frozen=True)
class MatchEvent:
    event_id: int
    match_id: int
    player_id: int
    team_id: int  # the team credited with the event
    minute: int
    event_type: str


@dataclass(frozen=True)
class SquadMember:
    year: int
    team_id: int
    player_id: int
    coach_id: int
    shirt_number: int
    games_played: int
    goals: int


@dataclass(frozen=True)
class PlayerClubSpell:
    player_id: int
    club_id: int
    from_year: int
    to_year: int


@dataclass(frozen=True)
class CoachClubSpell:
    coach_id: int
    club_id: int
    from_year: int
    to_year: int


@dataclass(frozen=True)
class ClubSeason:
    club_id: int
    league_id: int
    season_year: int
    position: int


# ---------------------------------------------------------------------------
# The universe container
# ---------------------------------------------------------------------------


@dataclass
class Universe:
    """All generated entities plus lookup indices."""

    seed: int
    teams: List[NationalTeam] = field(default_factory=list)
    leagues: List[League] = field(default_factory=list)
    clubs: List[Club] = field(default_factory=list)
    coaches: List[Coach] = field(default_factory=list)
    players: List[Player] = field(default_factory=list)
    stadiums: List[Stadium] = field(default_factory=list)
    world_cups: List[WorldCup] = field(default_factory=list)
    matches: List[Match] = field(default_factory=list)
    events: List[MatchEvent] = field(default_factory=list)
    squads: List[SquadMember] = field(default_factory=list)
    player_club_spells: List[PlayerClubSpell] = field(default_factory=list)
    coach_club_spells: List[CoachClubSpell] = field(default_factory=list)
    club_seasons: List[ClubSeason] = field(default_factory=list)

    # -- indices ------------------------------------------------------------
    def __post_init__(self) -> None:
        self._team_by_name: Dict[str, NationalTeam] = {}
        self._team_by_id: Dict[int, NationalTeam] = {}
        self._player_by_id: Dict[int, Player] = {}
        self._cup_by_year: Dict[int, WorldCup] = {}

    def reindex(self) -> None:
        self._team_by_name = {team.name.lower(): team for team in self.teams}
        self._team_by_id = {team.team_id: team for team in self.teams}
        self._player_by_id = {player.player_id: player for player in self.players}
        self._cup_by_year = {cup.year: cup for cup in self.world_cups}

    def team_by_name(self, name: str) -> NationalTeam:
        return self._team_by_name[name.lower()]

    def team(self, team_id: int) -> NationalTeam:
        return self._team_by_id[team_id]

    def player(self, player_id: int) -> Player:
        return self._player_by_id[player_id]

    def cup(self, year: int) -> WorldCup:
        return self._cup_by_year[year]

    def matches_in(self, year: int) -> List[Match]:
        return [match for match in self.matches if match.year == year]

    def events_for_match(self, match_id: int) -> List[MatchEvent]:
        return [event for event in self.events if event.match_id == match_id]

    def squad(self, year: int, team_id: int) -> List[SquadMember]:
        return [
            member
            for member in self.squads
            if member.year == year and member.team_id == team_id
        ]

    def total_goals(self, year: int) -> int:
        return sum(
            match.home_goals + match.away_goals for match in self.matches_in(year)
        )

    @property
    def years(self) -> List[int]:
        return [cup.year for cup in self.world_cups]


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


class UniverseGenerator:
    """Builds a deterministic :class:`Universe` from a seed."""

    def __init__(self, seed: int = 2022) -> None:
        self.seed = seed

    def generate(self) -> Universe:
        universe = Universe(seed=self.seed)
        rng = random.Random(self.seed)
        self._make_teams(universe, rng)
        self._make_leagues_and_clubs(universe, rng)
        self._make_stadiums(universe, rng)
        self._make_cups_and_matches(universe, rng)
        self._make_squads_and_players(universe, rng)
        self._make_events(universe, rng)
        self._fill_squad_statistics(universe)
        self._make_club_careers(universe, rng)
        universe.reindex()
        return universe

    # -- teams ------------------------------------------------------------
    def _make_teams(self, universe: Universe, rng: random.Random) -> None:
        for index, (name, confederation, start, end) in enumerate(NATIONAL_TEAMS):
            universe.teams.append(
                NationalTeam(
                    team_id=index + 1,
                    name=name,
                    confederation=confederation,
                    active_from=start,
                    active_to=end,
                    founded=rng.randint(1880, 1930),
                )
            )
        universe.reindex()

    # -- leagues and clubs ----------------------------------------------------
    def _make_leagues_and_clubs(self, universe: Universe, rng: random.Random) -> None:
        countries = [team.name for team in universe.teams if team.active_to > 2022]
        league_id = 0
        # 89 leagues: first division everywhere, second/third for the
        # strongest football countries.
        divisions_per_country = {}
        for country in countries:
            divisions_per_country[country] = 1
        for country in _STRENGTH_ORDER[:10]:
            divisions_per_country[country] = 2
        remaining = TARGET_LEAGUES - sum(divisions_per_country.values())
        for country in _STRENGTH_ORDER[10:]:
            if remaining <= 0:
                break
            if divisions_per_country.get(country) == 1:
                divisions_per_country[country] = 2
                remaining -= 1
        for country in sorted(divisions_per_country):
            for division in range(1, divisions_per_country[country] + 1):
                league_id += 1
                universe.leagues.append(
                    League(
                        league_id=league_id,
                        name=naming.league_name(country, division),
                        country=country,
                        division=division,
                    )
                )
        universe.leagues = universe.leagues[:TARGET_LEAGUES]
        club_names = naming.unique_names(naming.club_name, rng, TARGET_CLUBS)
        for index in range(TARGET_CLUBS):
            league = universe.leagues[index % len(universe.leagues)]
            city = naming.city_name(rng)
            universe.clubs.append(
                Club(
                    club_id=index + 1,
                    name=club_names[index],
                    city=city,
                    country=league.country,
                    founded=rng.randint(1880, 1990),
                    league_id=league.league_id,
                )
            )

    # -- stadiums ----------------------------------------------------------
    def _make_stadiums(self, universe: Universe, rng: random.Random) -> None:
        stadium_id = 0
        self._stadiums_by_host: Dict[str, List[int]] = {}
        for year, host, *_ in WORLD_CUP_HISTORY:
            if host in self._stadiums_by_host:
                continue
            ids = []
            for _ in range(8):
                stadium_id += 1
                city = naming.city_name(rng)
                universe.stadiums.append(
                    Stadium(
                        stadium_id=stadium_id,
                        name=naming.stadium_name(city, rng),
                        city=city,
                        country=host,
                        capacity=rng.randrange(25_000, 100_000, 500),
                        opened=rng.randint(1900, year),
                    )
                )
                ids.append(stadium_id)
            self._stadiums_by_host[host] = ids

    # -- cups and matches ----------------------------------------------------
    def _make_cups_and_matches(self, universe: Universe, rng: random.Random) -> None:
        match_id = 0
        for year, host, team_count, winner, runner_up, third, fourth in WORLD_CUP_HISTORY:
            podium = [
                universe.team_by_name(winner).team_id,
                universe.team_by_name(runner_up).team_id,
                universe.team_by_name(third).team_id,
                universe.team_by_name(fourth).team_id,
            ]
            universe.world_cups.append(
                WorldCup(year, host, team_count, *podium)
            )
            participants = self._pick_participants(
                universe, year, host, podium, team_count
            )
            match_id = self._schedule_cup(
                universe, rng, year, host, participants, podium, match_id
            )
        universe.reindex()

    def _pick_participants(
        self,
        universe: Universe,
        year: int,
        host: str,
        podium: List[int],
        team_count: int,
    ) -> List[int]:
        chosen = list(dict.fromkeys(podium))  # preserves seed order
        host_id = universe.team_by_name(host).team_id
        if host_id not in chosen:
            chosen.append(host_id)
        for name in _STRENGTH_ORDER:
            if len(chosen) >= team_count:
                break
            team = universe.team_by_name(name)
            if team.team_id in chosen:
                continue
            if not (team.active_from <= year <= team.active_to):
                continue
            chosen.append(team.team_id)
        return chosen[:team_count]

    def _schedule_cup(
        self,
        universe: Universe,
        rng: random.Random,
        year: int,
        host: str,
        participants: List[int],
        podium: List[int],
        match_id: int,
    ) -> int:
        stadium_ids = self._stadiums_by_host[host]
        stadium_cycle = 0

        def next_stadium() -> int:
            nonlocal stadium_cycle
            stadium_cycle += 1
            return stadium_ids[stadium_cycle % len(stadium_ids)]

        def add_match(
            stage: str,
            group: Optional[str],
            home: int,
            away: int,
            home_goals: int,
            away_goals: int,
        ) -> None:
            nonlocal match_id
            match_id += 1
            universe.matches.append(
                Match(
                    match_id=match_id,
                    year=year,
                    stage=stage,
                    group_name=group,
                    stadium_id=next_stadium(),
                    home_team_id=home,
                    away_team_id=away,
                    home_goals=home_goals,
                    away_goals=away_goals,
                    attendance=rng.randrange(18_000, 99_000, 250),
                )
            )

        # Group stage: participants are dealt round-robin into groups so
        # the seeded podium teams (the head of the list) land in
        # different groups and only meet in the knockout bracket.
        group_count = max(1, len(participants) // 4)
        groups: List[List[int]] = [[] for _ in range(group_count)]
        for index, team in enumerate(participants):
            groups[index % group_count].append(team)
        for group_index, group in enumerate(groups):
            group_name = chr(ord("A") + group_index)
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    home, away = group[i], group[j]
                    home_goals = _group_goals(rng)
                    away_goals = _group_goals(rng)
                    add_match("group", group_name, home, away, home_goals, away_goals)

        # Knockout: seeds are podium first, then remaining participants.
        seeds = podium + [team for team in participants if team not in podium]
        knockout_size = 16 if len(participants) >= 24 else (8 if len(participants) >= 14 else 4)
        bracket = seeds[:knockout_size]
        stage_names = {16: "round_of_16", 8: "quarter_final", 4: "semi_final"}
        while len(bracket) > 2:
            stage = stage_names[len(bracket)]
            next_round = []
            for i in range(len(bracket) // 2):
                strong = bracket[i]
                weak = bracket[len(bracket) - 1 - i]
                winner_goals, loser_goals = _knockout_goals(rng)
                if year == 2014 and stage == "semi_final" and {strong, weak} == {
                    universe.team_by_name("Germany").team_id,
                    universe.team_by_name("Brazil").team_id,
                }:
                    # The Mineirazo: Germany 7:1 Brazil — the paper's
                    # Figure 4 example depends on this exact score.
                    winner_goals, loser_goals = 7, 1
                add_match(stage, None, strong, weak, winner_goals, loser_goals)
                next_round.append(strong)
            bracket = next_round
        # Third-place match: third beats fourth.
        winner_goals, loser_goals = _knockout_goals(rng)
        add_match("third_place", None, podium[2], podium[3], winner_goals, loser_goals)
        # Final: winner beats runner-up.
        winner_goals, loser_goals = _knockout_goals(rng)
        add_match("final", None, podium[0], podium[1], winner_goals, loser_goals)
        return match_id

    # -- squads and players -----------------------------------------------------
    def _make_squads_and_players(self, universe: Universe, rng: random.Random) -> None:
        player_id = 0
        name_rng = random.Random(self.seed + 17)
        pools: Dict[int, List[Player]] = {team.team_id: [] for team in universe.teams}
        debut: Dict[int, int] = {}

        def new_player(team_id: int, year: int, position: str) -> Player:
            nonlocal player_id
            player_id += 1
            full_name = naming.player_name(name_rng)
            player = Player(
                player_id=player_id,
                full_name=full_name,
                nickname=naming.nickname(full_name, name_rng),
                birth_year=year - rng.randint(19, 33),
                position=position,
                height_cm=rng.randint(165, 200),
                preferred_foot=rng.choice(["left", "right", "right", "right"]),
                national_team_id=team_id,
            )
            universe.players.append(player)
            pools[team_id].append(player)
            debut[player.player_id] = year
            return player

        participation_years: Dict[int, List[int]] = {}
        for cup in universe.world_cups:
            year = cup.year
            participants = {
                match.home_team_id for match in universe.matches_in(year)
            } | {match.away_team_id for match in universe.matches_in(year)}
            for team_id in sorted(participants):
                participation_years.setdefault(team_id, []).append(year)
                squad: List[Player] = []
                # Re-use players whose career window covers this cup.
                for player in pools[team_id]:
                    if len(squad) >= 23:
                        break
                    if year - debut[player.player_id] <= 8 and rng.random() < 0.7:
                        squad.append(player)
                plan_index = 0
                while len(squad) < 23:
                    position = _POSITION_PLAN[plan_index % len(_POSITION_PLAN)]
                    plan_index += 1
                    squad.append(new_player(team_id, year, position))
                coach = self._cup_coach(universe, rng, team_id, year)
                for shirt, player in enumerate(squad, start=1):
                    universe.squads.append(
                        SquadMember(
                            year=year,
                            team_id=team_id,
                            player_id=player.player_id,
                            coach_id=coach,
                            shirt_number=shirt,
                            games_played=0,
                            goals=0,
                        )
                    )
        # Pad the player table with club-only players (the paper added
        # 1,230 such players from Wikidata enrichment).
        while player_id < TARGET_PLAYERS:
            player_id += 1
            full_name = naming.player_name(name_rng)
            universe.players.append(
                Player(
                    player_id=player_id,
                    full_name=full_name,
                    nickname=naming.nickname(full_name, name_rng),
                    birth_year=rng.randint(1940, 2004),
                    position=rng.choice(_POSITIONS),
                    height_cm=rng.randint(165, 200),
                    preferred_foot=rng.choice(["left", "right", "right", "right"]),
                    national_team_id=None,
                )
            )
        universe.reindex()

    def _cup_coach(
        self, universe: Universe, rng: random.Random, team_id: int, year: int
    ) -> int:
        """Pick (or create) the coach for one team participation."""
        if not hasattr(self, "_coach_assignments"):
            self._coach_assignments: Dict[Tuple[int, int], int] = {}
            self._coach_tenure: Dict[int, Tuple[int, int]] = {}
            self._coach_name_rng = random.Random(self.seed + 29)
        # A coach stays with a team for up to two consecutive cups.
        previous = self._coach_assignments.get((team_id, year - 4))
        if previous is not None and rng.random() < 0.45:
            self._coach_assignments[(team_id, year)] = previous
            return previous
        coach_id = len(universe.coaches) + 1
        team = universe.team(team_id)
        universe.coaches.append(
            Coach(
                coach_id=coach_id,
                name=naming.coach_name(self._coach_name_rng),
                nationality=team.name if rng.random() < 0.7 else "Italy",
                birth_year=year - rng.randint(38, 65),
            )
        )
        self._coach_assignments[(team_id, year)] = coach_id
        return coach_id

    # -- events -------------------------------------------------------------
    def _make_events(self, universe: Universe, rng: random.Random) -> None:
        squads_by_key: Dict[Tuple[int, int], List[SquadMember]] = {}
        for member in universe.squads:
            squads_by_key.setdefault((member.year, member.team_id), []).append(member)
        event_id = 0

        def scorers(year: int, team_id: int) -> List[int]:
            members = squads_by_key[(year, team_id)]
            weighted: List[int] = []
            for member in members:
                player = universe.player(member.player_id)
                weight = {"forward": 6, "midfielder": 3, "defender": 1, "goalkeeper": 0}[
                    player.position
                ]
                weighted.extend([member.player_id] * weight)
            return weighted or [members[0].player_id]

        def any_player(year: int, team_id: int) -> int:
            members = squads_by_key[(year, team_id)]
            return rng.choice(members).player_id

        for match in universe.matches:
            minutes_used = set()

            def fresh_minute() -> int:
                while True:
                    minute = rng.randint(1, 90)
                    if minute not in minutes_used:
                        minutes_used.add(minute)
                        return minute

            for team_id, opponent_id, goals in (
                (match.home_team_id, match.away_team_id, match.home_goals),
                (match.away_team_id, match.home_team_id, match.away_goals),
            ):
                pool = scorers(match.year, team_id)
                for _ in range(goals):
                    event_id += 1
                    roll = rng.random()
                    if roll < 0.04:
                        # Own goal: credited to the scoring team, struck
                        # by an opposing player.
                        event_type = "own_goal"
                        player = any_player(match.year, opponent_id)
                    elif roll < 0.12:
                        event_type = "penalty"
                        player = rng.choice(pool)
                    else:
                        event_type = "goal"
                        player = rng.choice(pool)
                    universe.events.append(
                        MatchEvent(
                            event_id=event_id,
                            match_id=match.match_id,
                            player_id=player,
                            team_id=team_id,
                            minute=fresh_minute(),
                            event_type=event_type,
                        )
                    )
            # Cards.
            for _ in range(_card_count(rng)):
                event_id += 1
                team_id = rng.choice((match.home_team_id, match.away_team_id))
                universe.events.append(
                    MatchEvent(
                        event_id=event_id,
                        match_id=match.match_id,
                        player_id=any_player(match.year, team_id),
                        team_id=team_id,
                        minute=fresh_minute(),
                        event_type="red_card" if rng.random() < 0.07 else "yellow_card",
                    )
                )

    def _fill_squad_statistics(self, universe: Universe) -> None:
        """Derive per-cup goals and appearances from the event stream."""
        goals: Dict[Tuple[int, int], int] = {}
        for event in universe.events:
            if event.event_type in ("goal", "penalty"):
                match = universe.matches[event.match_id - 1]
                goals[(match.year, event.player_id)] = (
                    goals.get((match.year, event.player_id), 0) + 1
                )
        games: Dict[Tuple[int, int], int] = {}
        for match in universe.matches:
            for team_id in (match.home_team_id, match.away_team_id):
                games[(match.year, team_id)] = games.get((match.year, team_id), 0) + 1
        rng = random.Random(self.seed + 41)
        updated = []
        for member in universe.squads:
            team_games = games.get((member.year, member.team_id), 0)
            played = max(0, min(team_games, team_games - rng.randint(0, 3)))
            updated.append(
                SquadMember(
                    year=member.year,
                    team_id=member.team_id,
                    player_id=member.player_id,
                    coach_id=member.coach_id,
                    shirt_number=member.shirt_number,
                    games_played=played,
                    goals=goals.get((member.year, member.player_id), 0),
                )
            )
        universe.squads = updated

    # -- club careers -----------------------------------------------------------
    def _make_club_careers(self, universe: Universe, rng: random.Random) -> None:
        club_count = len(universe.clubs)
        for player in universe.players:
            start = player.birth_year + 18
            first_club = rng.randrange(club_count) + 1
            second_club = rng.randrange(club_count) + 1
            switch = start + rng.randint(3, 8)
            universe.player_club_spells.append(
                PlayerClubSpell(player.player_id, first_club, start, switch)
            )
            universe.player_club_spells.append(
                PlayerClubSpell(player.player_id, second_club, switch, switch + rng.randint(2, 9))
            )
        for coach in universe.coaches:
            spells = rng.randint(1, 2)
            year = coach.birth_year + 36
            for _ in range(spells):
                club = rng.randrange(club_count) + 1
                universe.coach_club_spells.append(
                    CoachClubSpell(coach.coach_id, club, year, year + rng.randint(2, 6))
                )
                year += rng.randint(3, 8)
        # Pad the coach table with club-only coaches up to the target.
        name_rng = random.Random(self.seed + 53)
        while len(universe.coaches) < TARGET_COACHES:
            coach_id = len(universe.coaches) + 1
            universe.coaches.append(
                Coach(
                    coach_id=coach_id,
                    name=naming.coach_name(name_rng),
                    nationality=rng.choice(universe.teams).name,
                    birth_year=rng.randint(1935, 1985),
                )
            )
            club = rng.randrange(club_count) + 1
            year = rng.randint(1970, 2015)
            universe.coach_club_spells.append(
                CoachClubSpell(coach_id, club, year, year + rng.randint(2, 6))
            )
        for club in universe.clubs:
            league = club.league_id
            for season in range(1995, 2023):
                universe.club_seasons.append(
                    ClubSeason(
                        club_id=club.club_id,
                        league_id=league,
                        season_year=season,
                        position=rng.randint(1, 20),
                    )
                )


def _group_goals(rng: random.Random) -> int:
    return rng.choices([0, 1, 2, 3, 4, 5], weights=[22, 34, 26, 12, 5, 1])[0]


def _knockout_goals(rng: random.Random) -> Tuple[int, int]:
    loser = rng.choices([0, 1, 2], weights=[50, 38, 12])[0]
    winner = loser + rng.choices([1, 2, 3], weights=[60, 30, 10])[0]
    return winner, loser


def _card_count(rng: random.Random) -> int:
    return rng.choices([0, 1, 2, 3, 4, 5, 6], weights=[6, 14, 22, 24, 18, 11, 5])[0]
