"""Event-perturbed universe variants (distilled test-suite inputs).

A perturbed universe keeps the same world — teams, players, clubs,
leagues, coaches, stadiums, world cups, squad identities and the
complete fixture list — but re-randomizes match scores, goal/card
events, attendance and the squad statistics derived from them.  The
test-suite evaluator (:mod:`repro.evaluation.test_suite`) loads several
such variants behind one schema: a predicted query only counts as
correct if it matches the gold result on *every* variant, which exposes
coincidental EX matches on the primary database.

This is FootballDB's implementation of the generic
``DomainInstance.variant_database`` contract; generated domains get the
equivalent perturbation from
:func:`repro.domains.generator.generate_tables`'s ``variant_seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .universe import (
    Match,
    MatchEvent,
    SquadMember,
    Universe,
    _card_count,
    _group_goals,
    _knockout_goals,
)


def perturb_events(universe: Universe, seed: int) -> Universe:
    """A universe variant with the same world but different match events.

    Shared (by reference — all frozen dataclasses): teams, players,
    clubs, leagues, coaches, stadiums, world cups, squads' identities
    and the complete fixture list (pairings, stages, stadiums).
    Re-randomized: scores (group games freely; knockout games keep the
    bracket winner winning), goal/card events, attendance, and the
    squad statistics derived from them.
    """
    rng = random.Random(seed)
    variant = Universe(seed=seed)
    variant.teams = universe.teams
    variant.leagues = universe.leagues
    variant.clubs = universe.clubs
    variant.coaches = universe.coaches
    variant.players = universe.players
    variant.stadiums = universe.stadiums
    variant.world_cups = universe.world_cups
    variant.player_club_spells = universe.player_club_spells
    variant.coach_club_spells = universe.coach_club_spells
    variant.club_seasons = universe.club_seasons
    variant.matches = [_rescore(match, rng) for match in universe.matches]
    variant.squads = list(universe.squads)
    variant.reindex()
    _regenerate_events(variant, rng)
    _rederive_squad_statistics(variant, rng)
    variant.reindex()
    return variant


def _rescore(match: Match, rng: random.Random) -> Match:
    if match.stage == "group":
        home_goals = _group_goals(rng)
        away_goals = _group_goals(rng)
    else:
        # Knockout: preserve the bracket — the home side (the seeded
        # winner in the generator's scheduling) must still win.
        home_goals, away_goals = _knockout_goals(rng)
    return Match(
        match_id=match.match_id,
        year=match.year,
        stage=match.stage,
        group_name=match.group_name,
        stadium_id=match.stadium_id,
        home_team_id=match.home_team_id,
        away_team_id=match.away_team_id,
        home_goals=home_goals,
        away_goals=away_goals,
        attendance=rng.randrange(18_000, 99_000, 250),
    )


def _regenerate_events(variant: Universe, rng: random.Random) -> None:
    squads_by_key: Dict[tuple, List[SquadMember]] = {}
    for member in variant.squads:
        squads_by_key.setdefault((member.year, member.team_id), []).append(member)

    def scorers(year: int, team_id: int) -> List[int]:
        members = squads_by_key[(year, team_id)]
        weighted: List[int] = []
        for member in members:
            player = variant.player(member.player_id)
            weight = {"forward": 6, "midfielder": 3, "defender": 1, "goalkeeper": 0}[
                player.position
            ]
            weighted.extend([member.player_id] * weight)
        return weighted or [members[0].player_id]

    def any_player(year: int, team_id: int) -> int:
        return rng.choice(squads_by_key[(year, team_id)]).player_id

    events: List[MatchEvent] = []
    event_id = 0
    for match in variant.matches:
        minutes_used = set()

        def fresh_minute() -> int:
            while True:
                minute = rng.randint(1, 90)
                if minute not in minutes_used:
                    minutes_used.add(minute)
                    return minute

        for team_id, opponent_id, goals in (
            (match.home_team_id, match.away_team_id, match.home_goals),
            (match.away_team_id, match.home_team_id, match.away_goals),
        ):
            pool = scorers(match.year, team_id)
            for _ in range(goals):
                event_id += 1
                roll = rng.random()
                if roll < 0.04:
                    event_type, player = "own_goal", any_player(match.year, opponent_id)
                elif roll < 0.12:
                    event_type, player = "penalty", rng.choice(pool)
                else:
                    event_type, player = "goal", rng.choice(pool)
                events.append(
                    MatchEvent(event_id, match.match_id, player, team_id,
                               fresh_minute(), event_type)
                )
        for _ in range(_card_count(rng)):
            event_id += 1
            team_id = rng.choice((match.home_team_id, match.away_team_id))
            events.append(
                MatchEvent(
                    event_id, match.match_id, any_player(match.year, team_id),
                    team_id, fresh_minute(),
                    "red_card" if rng.random() < 0.07 else "yellow_card",
                )
            )
    variant.events = events


def _rederive_squad_statistics(variant: Universe, rng: random.Random) -> None:
    goals: Dict[tuple, int] = {}
    for event in variant.events:
        if event.event_type in ("goal", "penalty"):
            match = variant.matches[event.match_id - 1]
            key = (match.year, event.player_id)
            goals[key] = goals.get(key, 0) + 1
    games: Dict[tuple, int] = {}
    for match in variant.matches:
        for team_id in (match.home_team_id, match.away_team_id):
            games[(match.year, team_id)] = games.get((match.year, team_id), 0) + 1
    variant.squads = [
        SquadMember(
            year=member.year,
            team_id=member.team_id,
            player_id=member.player_id,
            coach_id=member.coach_id,
            shirt_number=member.shirt_number,
            games_played=max(0, games.get((member.year, member.team_id), 0) - rng.randint(0, 3)),
            goals=goals.get((member.year, member.player_id), 0),
        )
        for member in variant.squads
    ]
