"""Data model v1 — the initial deployment schema (paper Figure 3).

13 tables, 14 declared foreign keys.  Its two defining pathologies:

* ``match`` references ``national_team`` twice (``home_team_id`` and
  ``away_team_id``), and ``world_cup`` references it four times
  (``winner`` … ``fourth``) — multiple PK/FK edges between one table
  pair, which breaks single-edge join-path inference (SemQL systems);
* symmetric "A against B" questions need a ``UNION`` over both
  home/away assignments (Figure 4, left).
"""

from __future__ import annotations

from repro.sqlengine import Database, Schema

from . import common
from .common import _col
from .universe import Universe

VERSION = "v1"


def build_schema() -> Schema:
    schema = Schema("footballdb", version=VERSION)
    common.add_entity_tables(schema)
    schema.create_table(
        "world_cup",
        [
            _col("year", "int", pk=True),
            _col("host_country", "text"),
            _col("venue", "text"),
            _col("teams_count", "int"),
            _col("winner", "int"),
            _col("runner_up", "int"),
            _col("third", "int"),
            _col("fourth", "int"),
            _col("goals_scored", "int"),
            _col("matches_played", "int"),
            _col("attendance", "int"),
            _col("official_ball", "text"),
        ],
    )
    schema.create_table(
        "match",
        [
            _col("match_id", "int", pk=True),
            _col("year", "int"),
            _col("stage", "text"),
            _col("group_name", "text"),
            _col("stadium_id", "int"),
            _col("home_team_id", "int"),
            _col("away_team_id", "int"),
            _col("home_team_goals", "int"),
            _col("away_team_goals", "int"),
            _col("attendance", "int"),
            _col("match_day", "int"),
            _col("extra_time", "bool"),
        ],
    )
    schema.create_table("match_fact", common.match_fact_columns("match_id"))
    # Declared FKs: exactly the paper's 14.
    schema.add_foreign_key("world_cup", "winner", "national_team", "team_id")
    schema.add_foreign_key("world_cup", "runner_up", "national_team", "team_id")
    schema.add_foreign_key("world_cup", "third", "national_team", "team_id")
    schema.add_foreign_key("world_cup", "fourth", "national_team", "team_id")
    schema.add_foreign_key("match", "year", "world_cup", "year")
    schema.add_foreign_key("match", "stadium_id", "stadium", "stadium_id")
    schema.add_foreign_key("match", "home_team_id", "national_team", "team_id")
    schema.add_foreign_key("match", "away_team_id", "national_team", "team_id")
    schema.add_foreign_key("match_fact", "match_id", "match", "match_id")
    schema.add_foreign_key("match_fact", "player_id", "player", "player_id")
    common.add_player_fact_table(schema)  # +4 FKs
    common.add_bridge_tables(schema, declare_foreign_keys=False)
    return schema


def load(universe: Universe) -> Database:
    """Populate a fresh v1 database from the universe."""
    db = Database(build_schema())
    db.insert_many("national_team", common.national_team_rows(universe))
    db.insert_many("league", common.league_rows(universe))
    db.insert_many("club", common.club_rows(universe))
    db.insert_many("coach", common.coach_rows(universe))
    db.insert_many("player", common.player_rows(universe))
    db.insert_many("stadium", common.stadium_rows(universe))
    db.insert_many(
        "world_cup",
        [
            (
                cup.year,
                cup.host,
                f"{cup.host} {cup.year}",
                cup.team_count,
                cup.winner_id,
                cup.runner_up_id,
                cup.third_id,
                cup.fourth_id,
                universe.total_goals(cup.year),
                len(universe.matches_in(cup.year)),
                sum(match.attendance for match in universe.matches_in(cup.year)),
                f"Ball-{cup.year}",
            )
            for cup in universe.world_cups
        ],
    )
    db.insert_many(
        "match",
        [
            (
                match.match_id,
                match.year,
                match.stage,
                match.group_name,
                match.stadium_id,
                match.home_team_id,
                match.away_team_id,
                match.home_goals,
                match.away_goals,
                match.attendance,
                match.match_id % 28 + 1,
                match.stage not in ("group",) and (match.match_id % 7 == 0),
            )
            for match in universe.matches
        ],
    )
    db.insert_many("match_fact", common.match_fact_rows(universe, "match_id"))
    db.insert_many("player_fact", common.player_fact_rows(universe))
    db.insert_many("player_club_team", common.player_club_rows(universe))
    db.insert_many("coach_club_team", common.coach_club_rows(universe))
    db.insert_many("club_league_hist", common.club_league_rows(universe))
    return db
