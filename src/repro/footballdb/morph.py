"""Backward-compatibility shim — the morph machinery is domain-generic.

The schema morpher started life here, bound to FootballDB; it reads
nothing but the engine catalog and the data, so it moved to
:mod:`repro.domains.morph` where every generated domain can use it.
This module re-exports the public surface so existing imports
(``from repro.footballdb.morph import SchemaMorpher``) keep working.
"""

from repro.domains.morph import (
    DEFAULT_OPERATORS,
    CloneReroute,
    DeclareForeignKey,
    DropForeignKey,
    InlineChild,
    MorphError,
    MorphOperator,
    MorphStep,
    MorphedModel,
    RenameColumns,
    RenameTables,
    ReorderColumns,
    SchemaMorpher,
    SplitTable,
    WidenTypes,
    result_signature,
    verify_morph,
)

__all__ = [
    "DEFAULT_OPERATORS",
    "CloneReroute",
    "DeclareForeignKey",
    "DropForeignKey",
    "InlineChild",
    "MorphError",
    "MorphOperator",
    "MorphStep",
    "MorphedModel",
    "RenameColumns",
    "RenameTables",
    "ReorderColumns",
    "SchemaMorpher",
    "SplitTable",
    "WidenTypes",
    "result_signature",
    "verify_morph",
]
