"""Data-model characteristics — reproduces the paper's Table 2.

For each schema version: number of tables, columns, rows, foreign keys,
and the per-table means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sqlengine import Database


@dataclass(frozen=True)
class DataModelStats:
    """One column of the paper's Table 2."""

    version: str
    tables: int
    columns: int
    rows: int
    foreign_keys: int

    @property
    def mean_columns_per_table(self) -> float:
        return self.columns / self.tables if self.tables else 0.0

    @property
    def mean_rows_per_table(self) -> float:
        return self.rows / self.tables if self.tables else 0.0


def compute_stats(database: Database) -> DataModelStats:
    schema = database.schema
    return DataModelStats(
        version=schema.version,
        tables=len(schema.tables),
        columns=schema.column_count,
        rows=database.row_count(),
        foreign_keys=schema.foreign_key_count,
    )


def table2(databases: Dict[str, Database]) -> Dict[str, DataModelStats]:
    """Table 2 for every loaded data model, keyed by version."""
    return {version: compute_stats(db) for version, db in databases.items()}
