"""Data model v2 — first optimization (paper Figure 5).

16 tables, 13 declared foreign keys.  The 1:n relationships with
multiple PK/FK edges are remodeled through bridge tables:

* ``plays_as_home`` / ``plays_as_away`` replace ``match.home_team_id``
  and ``match.away_team_id`` — every table pair now shares at most one
  FK edge, so SemQL join-path inference works;
* ``world_cup_result`` (with a text ``prize`` column) replaces the four
  podium FKs on ``world_cup``.

Remaining pathology: symmetric match questions now need *two instances*
of ``plays_as_home``/``plays_as_away`` context plus a UNION (Figure 4,
middle) — and repeated table instances are exactly what the Spider
parser cannot represent, so such queries still fail in pre-processing.
The text-valued ``prize`` column also triggers the lexical gap ("second
place" vs ``runner_up``).
"""

from __future__ import annotations

from repro.sqlengine import Database, Schema

from . import common
from .common import _col
from .universe import Universe

VERSION = "v2"

#: the text values of world_cup_result.prize
PRIZES = ("winner", "runner_up", "third", "fourth")


def build_schema() -> Schema:
    schema = Schema("footballdb", version=VERSION)
    common.add_entity_tables(schema)
    schema.create_table(
        "world_cup",
        [
            _col("year", "int", pk=True),
            _col("host_country", "text"),
            _col("venue", "text"),
            _col("teams_count", "int"),
            _col("goals_scored", "int"),
            _col("matches_played", "int"),
            _col("attendance", "int"),
            _col("official_ball", "text"),
        ],
    )
    schema.create_table(
        "world_cup_result",
        [
            _col("year", "int"),
            _col("team_id", "int"),
            _col("prize", "text"),
        ],
    )
    schema.create_table(
        "match",
        [
            _col("match_id", "int", pk=True),
            _col("year", "int"),
            _col("stage", "text"),
            _col("group_name", "text"),
            _col("stadium_id", "int"),
            _col("attendance", "int"),
            _col("match_day", "int"),
            _col("extra_time", "bool"),
        ],
    )
    schema.create_table(
        "plays_as_home",
        [
            _col("match_id", "int", pk=True),
            _col("team_id", "int"),
            _col("home_team_goals", "int"),
        ],
    )
    schema.create_table(
        "plays_as_away",
        [
            _col("match_id", "int", pk=True),
            _col("team_id", "int"),
            _col("away_team_goals", "int"),
        ],
    )
    schema.create_table("match_fact", common.match_fact_columns("match_id"))
    # Declared FKs: the paper's 13 (world_cup_result.year is a reference
    # the original DDL left undeclared).
    schema.add_foreign_key("match", "year", "world_cup", "year")
    schema.add_foreign_key("match", "stadium_id", "stadium", "stadium_id")
    schema.add_foreign_key("plays_as_home", "match_id", "match", "match_id")
    schema.add_foreign_key("plays_as_home", "team_id", "national_team", "team_id")
    schema.add_foreign_key("plays_as_away", "match_id", "match", "match_id")
    schema.add_foreign_key("plays_as_away", "team_id", "national_team", "team_id")
    schema.add_foreign_key("world_cup_result", "team_id", "national_team", "team_id")
    schema.add_foreign_key("match_fact", "match_id", "match", "match_id")
    schema.add_foreign_key("match_fact", "player_id", "player", "player_id")
    common.add_player_fact_table(schema)  # +4 FKs
    common.add_bridge_tables(schema, declare_foreign_keys=False)
    return schema


def load(universe: Universe) -> Database:
    """Populate a fresh v2 database from the universe."""
    db = Database(build_schema())
    db.insert_many("national_team", common.national_team_rows(universe))
    db.insert_many("league", common.league_rows(universe))
    db.insert_many("club", common.club_rows(universe))
    db.insert_many("coach", common.coach_rows(universe))
    db.insert_many("player", common.player_rows(universe))
    db.insert_many("stadium", common.stadium_rows(universe))
    db.insert_many(
        "world_cup",
        [
            (
                cup.year,
                cup.host,
                f"{cup.host} {cup.year}",
                cup.team_count,
                universe.total_goals(cup.year),
                len(universe.matches_in(cup.year)),
                sum(match.attendance for match in universe.matches_in(cup.year)),
                f"Ball-{cup.year}",
            )
            for cup in universe.world_cups
        ],
    )
    db.insert_many(
        "world_cup_result",
        [
            (cup.year, team_id, prize)
            for cup in universe.world_cups
            for prize, team_id in zip(
                PRIZES, (cup.winner_id, cup.runner_up_id, cup.third_id, cup.fourth_id)
            )
        ],
    )
    db.insert_many(
        "match",
        [
            (
                match.match_id,
                match.year,
                match.stage,
                match.group_name,
                match.stadium_id,
                match.attendance,
                match.match_id % 28 + 1,
                match.stage not in ("group",) and (match.match_id % 7 == 0),
            )
            for match in universe.matches
        ],
    )
    db.insert_many(
        "plays_as_home",
        [
            (match.match_id, match.home_team_id, match.home_goals)
            for match in universe.matches
        ],
    )
    db.insert_many(
        "plays_as_away",
        [
            (match.match_id, match.away_team_id, match.away_goals)
            for match in universe.matches
        ],
    )
    db.insert_many("match_fact", common.match_fact_rows(universe, "match_id"))
    db.insert_many("player_fact", common.player_fact_rows(universe))
    db.insert_many("player_club_team", common.player_club_rows(universe))
    db.insert_many("coach_club_team", common.coach_club_rows(universe))
    db.insert_many("club_league_hist", common.club_league_rows(universe))
    return db
