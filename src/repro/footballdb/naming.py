"""Deterministic name synthesis for the FootballDB universe.

The paper's FootballDB contains real athletes scraped from Wikidata; we
generate synthetic-but-plausible names instead (substitution documented
in DESIGN.md §2).  National team names, hosts and podium places *are*
the historical ones, because the user questions reference them ("What
was the score between Germany and Brazil in 2014?").

All generation is driven by :class:`random.Random` instances seeded by
the caller — same seed, same universe, bit for bit.
"""

from __future__ import annotations

import random
from typing import List

_GIVEN_SYLLABLES = [
    "an", "bel", "car", "da", "ed", "fa", "gio", "hu", "iv", "jo",
    "ka", "lu", "mar", "nic", "or", "pa", "quin", "ro", "sa", "tho",
    "ul", "vi", "wil", "xa", "yan", "ze",
]
_FAMILY_SYLLABLES = [
    "ba", "cos", "dem", "er", "fer", "gar", "hoff", "ib", "jan", "kov",
    "lam", "mor", "nas", "ol", "per", "qui", "ram", "sil", "tor", "ur",
    "vas", "wag", "xim", "yil", "zan", "bra", "sch", "mul",
]
_FAMILY_SUFFIXES = ["a", "ez", "er", "ic", "ini", "o", "ov", "sen", "son", "sson"]

_CLUB_PREFIXES = ["FC", "SC", "AC", "CD", "SV", "CF", "AS", "Real", "Sporting", "United"]
_CLUB_CORES = [
    "Alba", "Borgo", "Cresta", "Delta", "Estrella", "Fortuna", "Granada",
    "Halcon", "Istria", "Juventa", "Kastel", "Lumen", "Mira", "Norte",
    "Orion", "Prima", "Quanta", "Riva", "Sole", "Tempo", "Unida", "Vela",
    "Wanda", "Xenia", "Yara", "Zenit",
]

_CITY_CORES = [
    "Alten", "Bergen", "Casa", "Dorn", "Elm", "Feld", "Grun", "Hafen",
    "Insel", "Jung", "Kirch", "Linden", "Markt", "Neuen", "Ober", "Port",
    "Quell", "Rosen", "Stein", "Tal", "Unter", "Vall", "Wald", "Zell",
]
_CITY_SUFFIXES = ["berg", "burg", "by", "field", "ford", "grad", "hafen", "polis", "stad", "ton", "ville"]


def player_name(rng: random.Random) -> str:
    """A synthetic 'Given Family' player name."""
    given = _capitalize(
        rng.choice(_GIVEN_SYLLABLES) + rng.choice(_GIVEN_SYLLABLES)
    )
    family = _capitalize(
        rng.choice(_FAMILY_SYLLABLES)
        + rng.choice(_FAMILY_SYLLABLES)
        + rng.choice(_FAMILY_SUFFIXES)
    )
    return f"{given} {family}"


def nickname(full_name: str, rng: random.Random) -> str:
    """A short nickname, mimicking the Kaggle dataset's partial names."""
    given, _, family = full_name.partition(" ")
    choice = rng.random()
    if choice < 0.4:
        return family
    if choice < 0.7:
        return given
    return f"{given[0]}. {family}"


def coach_name(rng: random.Random) -> str:
    return player_name(rng)


def club_name(rng: random.Random) -> str:
    prefix = rng.choice(_CLUB_PREFIXES)
    core = rng.choice(_CLUB_CORES)
    if rng.random() < 0.4:
        core += f" {rng.choice(_CLUB_CORES)}"
    return f"{prefix} {core}"


def city_name(rng: random.Random) -> str:
    return _capitalize(rng.choice(_CITY_CORES) + rng.choice(_CITY_SUFFIXES))


def stadium_name(city: str, rng: random.Random) -> str:
    style = rng.choice(["Stadium", "Arena", "Park", "National Stadium"])
    return f"{city} {style}"


def league_name(country: str, division: int) -> str:
    ordinal = {1: "First", 2: "Second", 3: "Third"}.get(division, f"{division}th")
    return f"{country} {ordinal} Division"


def unique_names(generator, rng: random.Random, count: int) -> List[str]:
    """Draw ``count`` distinct names from ``generator(rng)``.

    Appends a roman-ish disambiguator when the syllable space collides,
    which also gives the dataset the near-duplicate names that make
    value linking realistically fuzzy.
    """
    seen = {}
    names: List[str] = []
    for _ in range(count):
        name = generator(rng)
        occurrences = seen.get(name, 0)
        seen[name] = occurrences + 1
        if occurrences:
            name = f"{name} {'I' * (occurrences + 1)}"
        names.append(name)
    return names


def _capitalize(text: str) -> str:
    return text[:1].upper() + text[1:]


# -- identifier styles ---------------------------------------------------------
#
# The identifier-style helpers are domain-generic (the schema morpher in
# :mod:`repro.domains.morph` uses them for every domain, not just
# football), so their implementation lives in :mod:`repro.domains.naming`;
# they are re-exported here for backward compatibility.

from repro.domains.naming import (  # noqa: E402  (re-export)
    IDENTIFIER_STYLES,
    abbreviate_identifier,
    camel_identifier,
    pascal_identifier,
)

__all__ = [
    "IDENTIFIER_STYLES",
    "abbreviate_identifier",
    "camel_identifier",
    "city_name",
    "club_name",
    "coach_name",
    "league_name",
    "nickname",
    "pascal_identifier",
    "player_name",
    "stadium_name",
    "unique_names",
]
