"""One-stop loading of FootballDB instances.

``load_all()`` materializes the same universe under all three data
models — the property that makes FootballDB the first benchmark where
*the same questions* can be evaluated against *different schemas over
the same data* (paper Table 8, "Multi-Schema ✓").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.domains.instance import DomainInstance
from repro.sqlengine import Database

from . import schema_v1, schema_v2, schema_v3
from .universe import Universe, UniverseGenerator

VERSIONS = ("v1", "v2", "v3")

_MODULES = {"v1": schema_v1, "v2": schema_v2, "v3": schema_v3}


class FootballDB(DomainInstance):
    """The universe plus its materializations.

    A :class:`~repro.domains.instance.DomainInstance` (registered in the
    domain registry as ``"football"``): starts with the paper's three
    hand-written data models; morphed versions (see
    :mod:`repro.domains.morph`) are added via :meth:`register` and are
    indistinguishable from the built-ins to every downstream consumer
    (harness, systems, grid sweeps).  Test-suite variants re-randomize
    match events through :mod:`repro.footballdb.perturb`.
    """

    def __init__(self, universe: Universe, databases: Dict[str, Database]) -> None:
        super().__init__(
            "football",
            databases,
            universe=universe,
            variant_loader=self._load_variant,
        )

    def _load_variant(self, version: str, variant_seed: int) -> Database:
        from .perturb import perturb_events

        return load_version(perturb_events(self.universe, variant_seed), version)


def build_universe(seed: int = 2022) -> Universe:
    return UniverseGenerator(seed).generate()


def load_version(universe: Universe, version: str) -> Database:
    """Load one data-model version from an existing universe."""
    try:
        module = _MODULES[version]
    except KeyError:
        raise ValueError(f"unknown data model version {version!r}") from None
    return module.load(universe)


def load_all(seed: int = 2022, universe: Optional[Universe] = None) -> FootballDB:
    """Build the universe once and load every data model from it."""
    if universe is None:
        universe = build_universe(seed)
    databases = {version: load_version(universe, version) for version in VERSIONS}
    return FootballDB(universe=universe, databases=databases)
