"""One-stop loading of FootballDB instances.

``load_all()`` materializes the same universe under all three data
models — the property that makes FootballDB the first benchmark where
*the same questions* can be evaluated against *different schemas over
the same data* (paper Table 8, "Multi-Schema ✓").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sqlengine import Database

from . import schema_v1, schema_v2, schema_v3
from .universe import Universe, UniverseGenerator

VERSIONS = ("v1", "v2", "v3")

_MODULES = {"v1": schema_v1, "v2": schema_v2, "v3": schema_v3}


@dataclass
class FootballDB:
    """The universe plus its materializations.

    Starts with the paper's three hand-written data models; morphed
    versions (see :mod:`repro.footballdb.morph`) are added via
    :meth:`register` and are indistinguishable from the built-ins to
    every downstream consumer (harness, systems, grid sweeps).
    """

    universe: Universe
    databases: Dict[str, Database]

    def database(self, version: str) -> Database:
        return self.databases[version]

    def __getitem__(self, version: str) -> Database:
        return self.databases[version]

    @property
    def versions(self) -> List[str]:
        """Every registered data-model version, built-ins first."""
        return list(self.databases)

    def register(self, version: str, database: Database) -> str:
        """Add a derived data-model version (e.g. a schema morph)."""
        if version in self.databases:
            raise ValueError(f"data model version {version!r} already registered")
        self.databases[version] = database
        return version


def build_universe(seed: int = 2022) -> Universe:
    return UniverseGenerator(seed).generate()


def load_version(universe: Universe, version: str) -> Database:
    """Load one data-model version from an existing universe."""
    try:
        module = _MODULES[version]
    except KeyError:
        raise ValueError(f"unknown data model version {version!r}") from None
    return module.load(universe)


def load_all(seed: int = 2022, universe: Universe | None = None) -> FootballDB:
    """Build the universe once and load every data model from it."""
    if universe is None:
        universe = build_universe(seed)
    databases = {version: load_version(universe, version) for version in VERSIONS}
    return FootballDB(universe=universe, databases=databases)
