"""Table definitions and row extractors shared by all three data models.

The three schemas (Figures 3, 5 and 6 of the paper) differ only in how
matches, world-cup results and team relationships are modeled; the
entity tables (players, teams, clubs, leagues, coaches, stadiums) and
the bridge tables are identical.  This module holds those shared parts
so each ``schema_v*`` module contains exactly its own delta.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sqlengine import Column, Schema, SqlType

from .universe import Universe


def _col(name: str, sql_type: str, pk: bool = False) -> Column:
    mapping = {
        "int": SqlType.INTEGER,
        "real": SqlType.REAL,
        "text": SqlType.TEXT,
        "bool": SqlType.BOOLEAN,
    }
    return Column(name, mapping[sql_type], pk)


# -- shared table shapes ------------------------------------------------------


def add_entity_tables(schema: Schema) -> None:
    """The six entity tables present in every data model version."""
    schema.create_table(
        "national_team",
        [
            _col("team_id", "int", pk=True),
            _col("teamname", "text"),
            _col("confederation", "text"),
            _col("fifa_code", "text"),
            _col("founded", "int"),
            _col("active_from", "int"),
            _col("active_to", "int"),
        ],
    )
    schema.create_table(
        "league",
        [
            _col("league_id", "int", pk=True),
            _col("name", "text"),
            _col("country", "text"),
            _col("division", "int"),
            _col("founded", "int"),
        ],
    )
    schema.create_table(
        "club",
        [
            _col("club_id", "int", pk=True),
            _col("club_name", "text"),
            _col("city", "text"),
            _col("country", "text"),
            _col("founded", "int"),
            _col("stadium_name", "text"),
            _col("colors", "text"),
        ],
    )
    schema.create_table(
        "coach",
        [
            _col("coach_id", "int", pk=True),
            _col("coach_name", "text"),
            _col("nationality", "text"),
            _col("birth_year", "int"),
            _col("preferred_formation", "text"),
        ],
    )
    schema.create_table(
        "player",
        [
            _col("player_id", "int", pk=True),
            _col("player_name", "text"),
            _col("full_name", "text"),
            _col("birth_year", "int"),
            _col("birth_city", "text"),
            _col("position", "text"),
            _col("height_cm", "int"),
            _col("preferred_foot", "text"),
            _col("caps", "int"),
        ],
    )
    schema.create_table(
        "stadium",
        [
            _col("stadium_id", "int", pk=True),
            _col("stadium_name", "text"),
            _col("city", "text"),
            _col("country", "text"),
            _col("capacity", "int"),
            _col("opened", "int"),
            _col("surface", "text"),
        ],
    )


def add_player_fact_table(schema: Schema) -> None:
    schema.create_table(
        "player_fact",
        [
            _col("fact_id", "int", pk=True),
            _col("year", "int"),
            _col("team_id", "int"),
            _col("player_id", "int"),
            _col("coach_id", "int"),
            _col("shirt_number", "int"),
            _col("games_played", "int"),
            _col("goals_scored", "int"),
            _col("yellow_cards", "int"),
        ],
    )
    schema.add_foreign_key("player_fact", "year", "world_cup", "year")
    schema.add_foreign_key("player_fact", "team_id", "national_team", "team_id")
    schema.add_foreign_key("player_fact", "player_id", "player", "player_id")
    schema.add_foreign_key("player_fact", "coach_id", "coach", "coach_id")


def add_bridge_tables(schema: Schema, declare_foreign_keys: bool) -> None:
    """player/coach/club bridges and the club-league history.

    In data models v1 and v2 these carry *undeclared* references (the
    deployment's original DDL omitted them — one reason club questions
    routed poorly through join-path inference).  The v3 redesign
    declares them, contributing to its higher FK count (Table 2).
    """
    schema.create_table(
        "player_club_team",
        [
            _col("player_id", "int"),
            _col("club_id", "int"),
            _col("from_year", "int"),
            _col("to_year", "int"),
            _col("appearances", "int"),
        ],
    )
    schema.create_table(
        "coach_club_team",
        [
            _col("coach_id", "int"),
            _col("club_id", "int"),
            _col("from_year", "int"),
            _col("to_year", "int"),
        ],
    )
    schema.create_table(
        "club_league_hist",
        [
            _col("club_id", "int"),
            _col("league_id", "int"),
            _col("season_year", "int"),
            _col("position", "int"),
        ],
    )
    if declare_foreign_keys:
        schema.add_foreign_key("player_club_team", "player_id", "player", "player_id")
        schema.add_foreign_key("player_club_team", "club_id", "club", "club_id")
        schema.add_foreign_key("coach_club_team", "coach_id", "coach", "coach_id")
        schema.add_foreign_key("coach_club_team", "club_id", "club", "club_id")


# -- shared row extraction ------------------------------------------------------


def national_team_rows(universe: Universe) -> List[tuple]:
    return [
        (
            team.team_id,
            team.name,
            team.confederation,
            team.name[:3].upper(),
            team.founded,
            team.active_from,
            team.active_to,
        )
        for team in universe.teams
    ]


def league_rows(universe: Universe) -> List[tuple]:
    return [
        (league.league_id, league.name, league.country, league.division, 1900 + league.league_id % 60)
        for league in universe.leagues
    ]


def club_rows(universe: Universe) -> List[tuple]:
    return [
        (
            club.club_id,
            club.name,
            club.city,
            club.country,
            club.founded,
            f"{club.city} Ground",
            ["red/white", "blue/white", "black/yellow", "green/white"][club.club_id % 4],
        )
        for club in universe.clubs
    ]


def coach_rows(universe: Universe) -> List[tuple]:
    return [
        (
            coach.coach_id,
            coach.name,
            coach.nationality,
            coach.birth_year,
            ["4-4-2", "4-3-3", "3-5-2", "4-2-3-1"][coach.coach_id % 4],
        )
        for coach in universe.coaches
    ]


def player_rows(universe: Universe) -> List[tuple]:
    caps = {}
    for member in universe.squads:
        caps[member.player_id] = caps.get(member.player_id, 0) + member.games_played
    return [
        (
            player.player_id,
            player.nickname,
            player.full_name,
            player.birth_year,
            f"City-{player.player_id % 400:03d}",
            player.position,
            player.height_cm,
            player.preferred_foot,
            caps.get(player.player_id, 0),
        )
        for player in universe.players
    ]


def stadium_rows(universe: Universe) -> List[tuple]:
    return [
        (
            stadium.stadium_id,
            stadium.name,
            stadium.city,
            stadium.country,
            stadium.capacity,
            stadium.opened,
            "grass" if stadium.stadium_id % 5 else "hybrid",
        )
        for stadium in universe.stadiums
    ]


def player_fact_rows(universe: Universe) -> List[tuple]:
    yellows = {}
    for event in universe.events:
        if event.event_type == "yellow_card":
            match = universe.matches[event.match_id - 1]
            key = (match.year, event.player_id)
            yellows[key] = yellows.get(key, 0) + 1
    return [
        (
            index + 1,
            member.year,
            member.team_id,
            member.player_id,
            member.coach_id,
            member.shirt_number,
            member.games_played,
            member.goals,
            yellows.get((member.year, member.player_id), 0),
        )
        for index, member in enumerate(universe.squads)
    ]


def player_club_rows(universe: Universe) -> List[tuple]:
    return [
        (
            spell.player_id,
            spell.club_id,
            spell.from_year,
            spell.to_year,
            (spell.to_year - spell.from_year) * 30,
        )
        for spell in universe.player_club_spells
    ]


def coach_club_rows(universe: Universe) -> List[tuple]:
    return [
        (spell.coach_id, spell.club_id, spell.from_year, spell.to_year)
        for spell in universe.coach_club_spells
    ]


def club_league_rows(universe: Universe) -> List[tuple]:
    return [
        (season.club_id, season.league_id, season.season_year, season.position)
        for season in universe.club_seasons
    ]


def match_fact_rows(universe: Universe, match_key: str) -> List[tuple]:
    """Event rows; ``match_key`` selects v1/v2 (``match_id``) or v3
    (``match_team_id``) referencing."""
    rows = []
    for event in universe.events:
        if match_key == "match_id":
            reference = event.match_id
        else:
            match = universe.matches[event.match_id - 1]
            # home row is match_id*2-1, away row match_id*2
            if event.team_id == match.home_team_id:
                reference = match.match_id * 2 - 1
            else:
                reference = match.match_id * 2
        rows.append(
            (
                event.event_id,
                reference,
                event.player_id,
                event.team_id,
                event.minute,
                event.event_type in ("goal", "penalty", "own_goal"),
                event.event_type == "penalty",
                event.event_type == "own_goal",
                event.event_type == "yellow_card",
                event.event_type == "red_card",
                1 if event.minute <= 45 else 2,
            )
        )
    return rows


MATCH_FACT_COLUMNS = [
    ("fact_id", "int", True),
    ("player_id", "int", False),
    ("team_id", "int", False),
    ("minute", "int", False),
    ("goal", "bool", False),
    ("penalty", "bool", False),
    ("own_goal", "bool", False),
    ("yellow_card", "bool", False),
    ("red_card", "bool", False),
    ("half", "int", False),
]


def match_fact_columns(match_key: str) -> List[Column]:
    columns = [_col("fact_id", "int", pk=True), _col(match_key, "int")]
    columns.extend(
        _col(name, sql_type)
        for name, sql_type, pk in MATCH_FACT_COLUMNS
        if name != "fact_id"
    )
    return columns
