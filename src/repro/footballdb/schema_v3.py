"""Data model v3 — second optimization (paper Figure 6).

15 tables, 16 declared foreign keys.  The redesign principles
(Section 5.3): fewer joins, self-descriptive semantics, no implicit
knowledge.

* ``plays_match`` stores one row per *(match, team-role)*: the match is
  expressed from each team's perspective (``team_goals`` vs
  ``opponent_team_goals`` plus a ``team_role`` flag), so "Brazil against
  Germany" is one flat join with no UNION and no repeated table
  instances;
* ``national_opponent_team`` is a physical copy of ``national_team`` so
  the opponent side resolves through its own single FK edge;
* ``world_cup_result`` converts the text ``prize`` into four Boolean
  columns (``winner``, ``runner_up``, ``third``, ``fourth``), moving
  value linking from DB *content* into the *schema*;
* the previously undeclared bridge-table references are declared.
"""

from __future__ import annotations

from repro.sqlengine import Database, Schema

from . import common
from .common import _col
from .universe import Universe

VERSION = "v3"


def build_schema() -> Schema:
    schema = Schema("footballdb", version=VERSION)
    common.add_entity_tables(schema)
    # Physical copy of national_team for the opponent role.
    schema.create_table(
        "national_opponent_team",
        [
            _col("team_id", "int", pk=True),
            _col("teamname", "text"),
            _col("confederation", "text"),
            _col("fifa_code", "text"),
            _col("founded", "int"),
            _col("active_from", "int"),
            _col("active_to", "int"),
        ],
    )
    schema.create_table(
        "world_cup",
        [
            _col("year", "int", pk=True),
            _col("host_country", "text"),
            _col("venue", "text"),
            _col("teams_count", "int"),
            _col("goals_scored", "int"),
            _col("matches_played", "int"),
            _col("attendance", "int"),
            _col("official_ball", "text"),
        ],
    )
    schema.create_table(
        "world_cup_result",
        [
            _col("year", "int"),
            _col("team_id", "int"),
            _col("winner", "bool"),
            _col("runner_up", "bool"),
            _col("third", "bool"),
            _col("fourth", "bool"),
        ],
    )
    schema.create_table(
        "plays_match",
        [
            _col("match_team_id", "int", pk=True),
            _col("match_id", "int"),
            _col("team_id", "int"),
            _col("opponent_team_id", "int"),
            _col("year", "int"),
            _col("stage", "text"),
            _col("group_name", "text"),
            _col("stadium_id", "int"),
            _col("team_role", "text"),
            _col("team_goals", "int"),
            _col("opponent_team_goals", "int"),
            _col("attendance", "int"),
            _col("extra_time", "bool"),
        ],
    )
    schema.create_table("match_fact", common.match_fact_columns("match_team_id"))
    # Declared FKs: 16.
    schema.add_foreign_key("plays_match", "team_id", "national_team", "team_id")
    schema.add_foreign_key(
        "plays_match", "opponent_team_id", "national_opponent_team", "team_id"
    )
    schema.add_foreign_key("plays_match", "year", "world_cup", "year")
    schema.add_foreign_key("plays_match", "stadium_id", "stadium", "stadium_id")
    schema.add_foreign_key("world_cup_result", "year", "world_cup", "year")
    schema.add_foreign_key("world_cup_result", "team_id", "national_team", "team_id")
    schema.add_foreign_key("match_fact", "match_team_id", "plays_match", "match_team_id")
    schema.add_foreign_key("match_fact", "player_id", "player", "player_id")
    common.add_player_fact_table(schema)  # +4 FKs
    common.add_bridge_tables(schema, declare_foreign_keys=True)  # +4 FKs
    return schema


def home_match_team_id(match_id: int) -> int:
    """plays_match PK of a match's home-role row."""
    return match_id * 2 - 1


def away_match_team_id(match_id: int) -> int:
    """plays_match PK of a match's away-role row."""
    return match_id * 2


def load(universe: Universe) -> Database:
    """Populate a fresh v3 database from the universe."""
    db = Database(build_schema())
    team_rows = common.national_team_rows(universe)
    db.insert_many("national_team", team_rows)
    db.insert_many("national_opponent_team", team_rows)
    db.insert_many("league", common.league_rows(universe))
    db.insert_many("club", common.club_rows(universe))
    db.insert_many("coach", common.coach_rows(universe))
    db.insert_many("player", common.player_rows(universe))
    db.insert_many("stadium", common.stadium_rows(universe))
    db.insert_many(
        "world_cup",
        [
            (
                cup.year,
                cup.host,
                f"{cup.host} {cup.year}",
                cup.team_count,
                universe.total_goals(cup.year),
                len(universe.matches_in(cup.year)),
                sum(match.attendance for match in universe.matches_in(cup.year)),
                f"Ball-{cup.year}",
            )
            for cup in universe.world_cups
        ],
    )
    db.insert_many(
        "world_cup_result",
        [
            (
                cup.year,
                team_id,
                team_id == cup.winner_id,
                team_id == cup.runner_up_id,
                team_id == cup.third_id,
                team_id == cup.fourth_id,
            )
            for cup in universe.world_cups
            for team_id in (cup.winner_id, cup.runner_up_id, cup.third_id, cup.fourth_id)
        ],
    )
    plays_rows = []
    for match in universe.matches:
        extra_time = match.stage not in ("group",) and (match.match_id % 7 == 0)
        plays_rows.append(
            (
                home_match_team_id(match.match_id),
                match.match_id,
                match.home_team_id,
                match.away_team_id,
                match.year,
                match.stage,
                match.group_name,
                match.stadium_id,
                "home",
                match.home_goals,
                match.away_goals,
                match.attendance,
                extra_time,
            )
        )
        plays_rows.append(
            (
                away_match_team_id(match.match_id),
                match.match_id,
                match.away_team_id,
                match.home_team_id,
                match.year,
                match.stage,
                match.group_name,
                match.stadium_id,
                "away",
                match.away_goals,
                match.home_goals,
                match.attendance,
                extra_time,
            )
        )
    db.insert_many("plays_match", plays_rows)
    db.insert_many("match_fact", common.match_fact_rows(universe, "match_team_id"))
    db.insert_many("player_fact", common.player_fact_rows(universe))
    db.insert_many("player_club_team", common.player_club_rows(universe))
    db.insert_many("coach_club_team", common.coach_club_rows(universe))
    db.insert_many("club_league_hist", common.club_league_rows(universe))
    return db
