"""Bind existing component counters into a :class:`MetricsRegistry`.

The engine and serving layers each keep their own counters (plan
cache, optimizer, column store, engine-mode split, response cache,
quota/shedding).  These helpers register pull collectors for them so
one ``registry.snapshot()`` / ``registry.render()`` captures the whole
stack.  Every bind is *deduplicated by identity*: binding the same
database (or a plan cache shared across schema variants) twice is a
no-op, which is what makes registry-based aggregation immune to the
double counting that merging raw dicts invited.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, dict_collector


def bind_database(
    registry: MetricsRegistry,
    database: Any,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Expose one database's engine counters through the registry.

    Families: ``engine_plan_cache_*`` (deduplicated per underlying
    cache, so schema variants sharing a cache via ``for_scope`` count
    it once), ``engine_optimizer_*``, ``engine_mode_*`` and
    ``engine_column_store_*`` (per database).
    """
    labels = dict(labels or {})
    labels.setdefault("schema", database.schema.name)
    labels.setdefault("version", database.schema.version)
    cache = database.plan_cache
    if cache is not None:
        # shared caches are keyed by their storage token, not the view
        cache_labels = {"schema": labels["schema"]}
        registry.register_callback(
            dict_collector("engine_plan_cache", cache.stats, cache_labels),
            key=("plan_cache", cache.storage_token),
        )
    registry.register_callback(
        dict_collector("engine_optimizer", database.optimizer_stats, labels),
        key=("optimizer", id(database)),
    )
    registry.register_callback(
        dict_collector("engine_mode", database.engine_mode_stats, labels),
        key=("engine_mode", id(database)),
    )
    registry.register_callback(
        dict_collector("engine_column_store", database.column_store_stats, labels),
        key=("column_store", id(database)),
    )


def bind_service(
    registry: MetricsRegistry,
    service: Any,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Expose a :class:`TextToSQLService`'s counters and its database.

    Also attaches a registry-backed latency *histogram* to the service
    (fixed buckets, constant memory) — the modern replacement for the
    sliding-window percentile list, which stays only for the legacy
    ``metrics()`` keys.
    """
    labels = dict(labels or {})
    registry.register_callback(
        dict_collector("service", service.counter_stats, labels),
        key=("service", id(service)),
    )
    family = registry.histogram(
        "service_latency_seconds",
        "per-question serving latency (cache hits at 0)",
        labelnames=tuple(sorted(labels)),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    service._latency_hist = family.labels(**labels) if labels else family
    bind_database(registry, service.database, labels=labels or None)


def bind_process_grid(
    registry: MetricsRegistry,
    executor: Any,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Expose a :class:`~repro.evaluation.procpool.ProcessGridExecutor`.

    Families: ``process_grid_*`` — fleet-level run/cell/question
    counters and cumulative wall time.  Worker-side engine counters
    live in the worker processes and are deliberately not pulled
    across the pickle boundary (see the procpool module docstring).
    """
    registry.register_callback(
        dict_collector("process_grid", executor.stats, dict(labels or {})),
        key=("process_grid", id(executor)),
    )


def bind_ingestion(
    registry: MetricsRegistry,
    driver: Any,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Expose an :class:`~repro.evaluation.ingestion.IngestionReplayDriver`.

    Families: ``ingestion_*`` — events replayed, rows inserted,
    batches flushed, snapshots taken, evaluation rounds completed.
    """
    registry.register_callback(
        dict_collector("ingestion", driver.stats, dict(labels or {})),
        key=("ingestion", id(driver)),
    )


def bind_serving(
    registry: MetricsRegistry,
    serving: Any,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Expose the async front end's admission/shedding/batching counters."""
    labels = dict(labels or {})

    def front_end_stats() -> Dict[str, Any]:
        metrics = serving.metrics()
        # per-domain counts and shard maps are label-shaped, not gauges
        return {
            key: value
            for key, value in metrics.items()
            if key not in ("questions_per_domain", "domains", "tenants", "shards")
        }

    registry.register_callback(
        dict_collector("serving", front_end_stats, labels),
        key=("serving", id(serving)),
    )
    family = registry.histogram(
        "serving_wall_latency_seconds",
        "admission-to-completion wall latency",
        labelnames=tuple(sorted(labels)),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )
    serving._latency_hist = family.labels(**labels) if labels else family

    def per_domain() -> Dict[str, Any]:
        return serving.metrics().get("questions_per_domain", {})

    def per_domain_samples():
        return [
            ("serving_questions_per_domain", {**labels, "domain": domain}, count)
            for domain, count in sorted(per_domain().items())
        ]

    registry.register_callback(
        per_domain_samples, key=("serving_domains", id(serving))
    )
