"""Per-operator execution profiling: the substrate of EXPLAIN ANALYZE.

Both executors (row and vectorized) carry optional instrumentation: a
thread-local :class:`ExecProfile` that, when installed, records one
:class:`OpStat` — operator name, output row count, wall time — per
pipeline stage (scan, each join, semi-join, filter, aggregate/project,
finalize).  When no profile is installed the instrumented sites cost
one thread-local read per stage, which is what keeps the always-on
path inside the overhead budget.

``Database.explain_analyze`` installs a profile on both executors,
runs the statement, and renders the operator table alongside the
regular ``EXPLAIN`` plan.  The clock is injectable so golden tests pin
the full rendering, timings included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

Clock = Callable[[], float]


@dataclass
class OpStat:
    """One executed operator: what ran, how long, how many rows out."""

    depth: int
    engine: str  # "row" | "vectorized"
    op: str  # e.g. "scan team", "hash join player", "filter"
    rows: int
    seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "engine": self.engine,
            "op": self.op,
            "rows": self.rows,
            "time_ms": self.seconds * 1000.0,
        }


class ExecProfile:
    """Collects operator stats for one statement execution.

    Installed per thread (``Executor.set_profile`` /
    ``VectorizedExecutor.set_profile``), so concurrent statements on
    other threads never interleave records.  ``depth`` tracks subquery
    nesting: the row executor pushes on entering a nested SELECT so a
    correlated subquery's operators indent under their parent.
    """

    __slots__ = ("clock", "ops", "depth")

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self.clock = clock
        self.ops: List[OpStat] = []
        self.depth = 0

    def record(self, engine: str, op: str, rows: int, started: float) -> None:
        self.ops.append(
            OpStat(self.depth, engine, op, rows, self.clock() - started)
        )

    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.ops)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [op.as_dict() for op in self.ops]


def render_analyze(
    explain_text: str,
    profile: ExecProfile,
    engine_mode: str,
    result_rows: int,
    total_seconds: Optional[float] = None,
) -> str:
    """EXPLAIN ANALYZE rendering: the plan, then the operator table.

    The operator table is stable given a deterministic clock (golden
    tests inject one); each line shows the operator (indented by
    subquery depth), its actual output rows and its wall time.
    ``total_seconds`` is the statement's measured wall time — operator
    times nest (a filter's time includes its correlated subqueries'),
    so summing them would double count; when not provided the sum is
    used as a best-effort stand-in.
    """
    if total_seconds is None:
        total_seconds = profile.total_seconds()
    lines = [explain_text]
    lines.append(f"-- analyze (engine={engine_mode}) --")
    width = max(
        [len("  " * op.depth + f"{op.op} [{op.engine}]") for op in profile.ops]
        + [len("total")]
    )
    for op in profile.ops:
        label = "  " * op.depth + f"{op.op} [{op.engine}]"
        lines.append(
            f"{label:<{width}}  rows={op.rows:<8d} time={op.seconds * 1000.0:.3f}ms"
        )
    lines.append(
        f"{'total':<{width}}  rows={result_rows:<8d} "
        f"time={total_seconds * 1000.0:.3f}ms"
    )
    return "\n".join(lines)
