"""Thread-safe metrics primitives and the process-wide registry.

One :class:`MetricsRegistry` is the single pane of glass the serving
stack reports through: counters (monotonic), gauges (point-in-time)
and fixed-bucket histograms (latency distributions), each optionally
labeled, plus *callback collectors* that pull numbers out of
components which keep their own counters (plan cache, optimizer,
response cache, shard services).  A single :meth:`MetricsRegistry.snapshot`
therefore captures serving, deployment and engine state in one JSON
document, and :meth:`MetricsRegistry.render` emits the same data in
the Prometheus text exposition format (stable ordering — the format
is golden-tested).

Design notes
------------
* Every mutation takes a per-instrument lock, so counter totals and
  histogram bucket sums are exact under free-running threads (the
  concurrency tests hammer this with a tiny switch interval).
* Histograms use fixed upper bounds (cumulative, Prometheus style)
  instead of the sliding-window value lists the services used to
  keep: constant memory, mergeable across workers, and quantiles come
  from linear interpolation within the winning bucket.
* Instrument creation is idempotent: asking for an existing name with
  the same kind and label names returns the same family, so several
  components can share ``service_requests_total`` without ceremony.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: default latency buckets (seconds): 100µs .. 10s, roughly log-spaced
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values.

    The single implementation behind every ``p50/p95/p99`` readout in
    the repo (``repro.deployment`` and ``repro.serving`` re-export it
    for backward compatibility).
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


def _label_pairs(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-style number formatting: integral values lose the dot."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (one labeled child).

    ``bounds`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is O(log buckets); the cumulative
    counts, total sum and observation count are all exact under
    concurrency (single lock per child).
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self._lock = threading.Lock()
        self._counts = [0] * (len(ordered) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        position = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def quantile(self, fraction: float) -> float:
        """Estimated quantile: linear interpolation inside the winning
        bucket (0 for an empty histogram; the last finite bound for
        observations beyond it — a histogram cannot see further)."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0
        lower = 0.0
        for position, bound in enumerate(self.bounds):
            count = counts[position]
            if cumulative + count >= rank and count:
                within = (rank - cumulative) / count
                return lower + (bound - lower) * within
            cumulative += count
            lower = bound
        return self.bounds[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[LabelPairs, Any] = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = _label_pairs(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def children(self) -> List[Tuple[LabelPairs, Any]]:
        with self._lock:
            return sorted(self._children.items())

    # -- unlabeled convenience: the family proxies its single child ------
    def _single(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._single().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._single().dec(amount)

    def set(self, value: float) -> None:
        self._single().set(value)

    def observe(self, value: float) -> None:
        self._single().observe(value)

    @property
    def value(self) -> float:
        return self._single().value

    @property
    def count(self) -> int:
        return self._single().count

    @property
    def sum(self) -> float:
        return self._single().sum

    def buckets(self) -> List[Tuple[float, int]]:
        return self._single().buckets()

    def quantile(self, fraction: float) -> float:
        return self._single().quantile(fraction)


class MetricsRegistry:
    """Process-wide metric store: instruments + callback collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._callbacks: List[Callable[[], Iterable[Tuple[str, Dict[str, str], float]]]] = []
        self._callback_keys: set = set()

    # -- instrument constructors -------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                        f"{family.labelnames}, requested {kind}{labelnames}"
                    )
                return family
            family = MetricFamily(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    # -- callback collectors ------------------------------------------------
    def register_callback(
        self,
        callback: Callable[[], Iterable[Tuple[str, Dict[str, str], float]]],
        key: Optional[Any] = None,
    ) -> bool:
        """Register a pull collector: ``callback()`` yields
        ``(metric_name, labels, value)`` triples at snapshot time.

        ``key`` deduplicates: binding the same underlying component
        twice (two services sharing a database, a shard listed under
        two views) is a no-op, which is what makes registry-based
        aggregation safe against double counting.  Returns whether the
        callback was actually added.
        """
        with self._lock:
            if key is not None:
                if key in self._callback_keys:
                    return False
                self._callback_keys.add(key)
            self._callbacks.append(callback)
            return True

    def _collect_callbacks(self) -> Dict[str, List[Tuple[LabelPairs, float]]]:
        with self._lock:
            callbacks = list(self._callbacks)
        collected: Dict[str, List[Tuple[LabelPairs, float]]] = {}
        for callback in callbacks:
            for name, labels, value in callback():
                collected.setdefault(name, []).append((_label_pairs(labels), value))
        for samples in collected.values():
            samples.sort(key=lambda sample: sample[0])
        return collected

    # -- output -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything the registry knows, as one JSON-safe document."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            samples: List[Dict[str, Any]] = []
            for pairs, child in family.children():
                entry: Dict[str, Any] = {"labels": dict(pairs)}
                if family.kind == "histogram":
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = [
                        {"le": bound if bound != float("inf") else "+Inf", "count": count}
                        for bound, count in child.buckets()
                    ]
                else:
                    entry["value"] = child.value
                samples.append(entry)
            out[name] = {"kind": family.kind, "help": family.help, "samples": samples}
        for name, samples in sorted(self._collect_callbacks().items()):
            sample_dicts = [
                {"labels": dict(pairs), "value": value} for pairs, value in samples
            ]
            entry = out.get(name)
            if entry is None:
                out[name] = {"kind": "gauge", "help": "", "samples": sample_dicts}
            else:
                entry["samples"].extend(sample_dicts)
        return out

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4), stable ordering."""
        lines: List[str] = []
        with self._lock:
            families = dict(self._families)
        collected = self._collect_callbacks()
        for name in sorted(set(families) | set(collected)):
            family = families.get(name)
            if family is not None:
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for pairs, child in family.children():
                    if family.kind == "histogram":
                        for bound, count in child.buckets():
                            le = "+Inf" if bound == float("inf") else _format_value(bound)
                            bucket_pairs = pairs + (("le", le),)
                            lines.append(
                                f"{name}_bucket{_format_labels(bucket_pairs)} {count}"
                            )
                        lines.append(
                            f"{name}_sum{_format_labels(pairs)} {_format_value(child.sum)}"
                        )
                        lines.append(
                            f"{name}_count{_format_labels(pairs)} {child.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_format_labels(pairs)} {_format_value(child.value)}"
                        )
            if name in collected:
                if family is None:
                    lines.append(f"# TYPE {name} gauge")
                for pairs, value in collected[name]:
                    lines.append(f"{name}{_format_labels(pairs)} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def flatten_numeric(prefix: str, mapping: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a nested stats dict to ``prefix_key_subkey -> number``.

    Non-numeric leaves are skipped (booleans count as 0/1); this is the
    adapter that turns the repo's existing ``*_stats()`` dictionaries
    into registry samples without rewriting their producers.
    """
    out: Dict[str, float] = {}
    for key, value in mapping.items():
        name = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten_numeric(name, value))
        elif isinstance(value, bool):
            out[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            out[name] = value
    return out


def dict_collector(
    prefix: str,
    source: Callable[[], Dict[str, Any]],
    labels: Optional[Dict[str, str]] = None,
) -> Callable[[], Iterable[Tuple[str, Dict[str, str], float]]]:
    """A registry callback exposing a dict-returning stats function."""
    fixed = dict(labels or {})

    def collect() -> Iterable[Tuple[str, Dict[str, str], float]]:
        return [
            (name, fixed, value)
            for name, value in sorted(flatten_numeric(prefix, source()).items())
        ]

    return collect
