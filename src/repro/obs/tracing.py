"""Structured request tracing: nested spans with injectable clocks.

A :class:`Tracer` produces *spans* — named, labeled intervals — that
nest through a ``contextvars`` context, so one request's path through
admission → routing → batching → prediction → execution reads as a
tree no matter how many components touched it.  Finished traces land
in a bounded :class:`TraceStore` keyed by trace id (the ``/trace/<id>``
route in :mod:`repro.deployment.webapp` serves them).

Determinism and overhead are both first-class:

* the clock is injectable (tests drive a fake monotonic clock and
  span durations become exact);
* ids are sequential (``t-000001`` / ``s-000001``) — reproducible in
  tests, cheap in production;
* *head sampling* decides once per trace, from a seeded RNG, whether
  the whole tree is recorded; unsampled traces cost one RNG draw and
  return a shared no-op span, which is what keeps tracing within the
  serving overhead budget (``scripts/bench_obs_overhead.py`` gates
  it).

``contextvars`` propagate within one thread and across ``await``
boundaries of a single task.  Crossing an executor boundary (shard
worker threads) is explicit: capture ``tracer.current_span()`` on the
near side and pass it as ``parent=`` on the far side.
"""

from __future__ import annotations

import contextvars
import itertools
import random
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

Clock = Callable[[], float]

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed, labeled interval in a trace (context manager)."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "labels",
        "start",
        "end",
        "status",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        labels: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.labels = labels
        self.start = tracer.clock()
        self.end: Optional[float] = None
        self.status = "ok"
        self._token: Optional[contextvars.Token] = None

    @property
    def recording(self) -> bool:
        return True

    def set_label(self, key: str, value: Any) -> None:
        self.labels[key] = value

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def finish(self, status: Optional[str] = None) -> None:
        if self.end is not None:
            return
        self.end = self.tracer.clock()
        if status is not None:
            self.status = status
        self.tracer._finish(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": dict(self.labels),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
        }

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.finish("error" if exc_type is not None else None)


class _NoopSpan:
    """Shared span stand-in for unsampled traces: absorbs everything."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    recording = False
    duration = 0.0

    def set_label(self, key: str, value: Any) -> None:
        pass

    def finish(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceStore:
    """Bounded LRU of finished traces: trace id → list of span dicts.

    Spans are appended in *finish* order (children before parents —
    the order a depth-first walk unwinds); readers re-nest via
    ``parent_id``.  The store holds the most recent ``capacity``
    traces and is safe to read from any thread.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()

    def add(self, span: Span) -> None:
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = self._traces[span.trace_id] = []
                while len(self._traces) > self.capacity:
                    self._traces.popitem(last=False)
            spans.append(span.as_dict())

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def tree(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """The trace re-nested: roots with ``children`` lists, ordered
        by span start time."""
        spans = self.get(trace_id)
        if spans is None:
            return None
        by_id: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            entry = dict(span)
            entry["children"] = []
            by_id[entry["span_id"]] = entry
        roots: List[Dict[str, Any]] = []
        for entry in by_id.values():
            parent = by_id.get(entry["parent_id"]) if entry["parent_id"] else None
            if parent is not None:
                parent["children"].append(entry)
            else:
                roots.append(entry)
        def sort_tree(entries: List[Dict[str, Any]]) -> None:
            entries.sort(key=lambda entry: (entry["start"], entry["span_id"]))
            for entry in entries:
                sort_tree(entry["children"])
        sort_tree(roots)
        return roots


class Tracer:
    """Produces spans; owns the sampling decision and the store."""

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        sample_rate: float = 1.0,
        seed: int = 0,
        store: Optional[TraceStore] = None,
        registry: Optional[Any] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.clock = clock
        self.sample_rate = sample_rate
        self.store = store if store is not None else TraceStore()
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._sampled = 0
        self._dropped = 0
        self._counter_lock = threading.Lock()
        if registry is not None:
            self._trace_counter = registry.counter(
                "obs_traces_total",
                "head-sampling decisions by verdict",
                labelnames=("verdict",),
            )
            self._span_counter = registry.counter(
                "obs_spans_total", "spans finished and recorded"
            )
        else:
            self._trace_counter = None
            self._span_counter = None

    # -- span construction ---------------------------------------------------
    def current_span(self):
        """The active span in this context (None outside any trace)."""
        return _current_span.get()

    def span(self, name: str, parent: Optional[Any] = None, **labels: Any):
        """A child span of ``parent`` (default: the context's current
        span), or a new sampled-or-not root when there is neither."""
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            return self.start_trace(name, **labels)
        if not getattr(parent, "recording", False):
            return NOOP_SPAN
        return Span(
            self,
            parent.trace_id,
            f"s-{next(self._span_ids):06d}",
            parent.span_id,
            name,
            labels,
        )

    def start_trace(self, name: str, **labels: Any):
        """Begin a new trace; the head-sampling decision happens here."""
        with self._rng_lock:
            sampled = (
                self.sample_rate >= 1.0 or self._rng.random() < self.sample_rate
            )
        if not sampled:
            with self._counter_lock:
                self._dropped += 1
            if self._trace_counter is not None:
                self._trace_counter.labels(verdict="dropped").inc()
            return NOOP_SPAN
        with self._counter_lock:
            self._sampled += 1
        if self._trace_counter is not None:
            self._trace_counter.labels(verdict="sampled").inc()
        trace_id = f"t-{next(self._trace_ids):06d}"
        return Span(
            self, trace_id, f"s-{next(self._span_ids):06d}", None, name, labels
        )

    def _finish(self, span: Span) -> None:
        if self._span_counter is not None:
            self._span_counter.inc()
        self.store.add(span)

    # -- observability -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            sampled, dropped = self._sampled, self._dropped
        return {
            "sample_rate": self.sample_rate,
            "sampled_traces": sampled,
            "dropped_traces": dropped,
            "stored_traces": len(self.store),
        }
