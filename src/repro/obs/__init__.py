"""Unified observability layer: metrics, tracing, execution profiling.

Three pillars, one import:

* :class:`MetricsRegistry` — thread-safe counters, gauges and
  fixed-bucket histograms with Prometheus text exposition and JSON
  snapshots; callback collectors pull the engine's and services'
  existing counters in, so one ``snapshot()`` sees the whole stack.
* :class:`Tracer` — nested request spans with injectable clocks and
  seeded head sampling, stored in a bounded :class:`TraceStore` the
  web app serves at ``/trace/<id>``.
* :class:`ExecProfile` — per-operator wall-time/row-count collection
  inside both executors, rendered by ``Database.explain_analyze``.

See docs/ARCHITECTURE.md § "Observability".
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    dict_collector,
    flatten_numeric,
    percentile,
)
from .profile import ExecProfile, OpStat, render_analyze
from .tracing import NOOP_SPAN, Span, TraceStore, Tracer
from .wiring import (
    bind_database,
    bind_ingestion,
    bind_process_grid,
    bind_service,
    bind_serving,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ExecProfile",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NOOP_SPAN",
    "OpStat",
    "Span",
    "TraceStore",
    "Tracer",
    "bind_database",
    "bind_ingestion",
    "bind_process_grid",
    "bind_service",
    "bind_serving",
    "dict_collector",
    "flatten_numeric",
    "percentile",
    "render_analyze",
]
