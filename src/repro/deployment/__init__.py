"""Deployment substrate: the Figure 2 service, web back-end and labeling."""

from .labeling import (
    AUTO_LABEL_THRESHOLD,
    LabelingPipeline,
    LabelingSuggestion,
    VerifiedPair,
)
from .service import ServiceResponse, TextToSQLService, percentile
from .webapp import InteractionLog, WebBackend

__all__ = [
    "AUTO_LABEL_THRESHOLD",
    "InteractionLog",
    "LabelingPipeline",
    "LabelingSuggestion",
    "ServiceResponse",
    "TextToSQLService",
    "VerifiedPair",
    "WebBackend",
    "percentile",
]
