"""Deployment substrate: the Figure 2 service, web back-end and labeling."""

from .labeling import (
    AUTO_LABEL_THRESHOLD,
    LabelingPipeline,
    LabelingSuggestion,
    VerifiedPair,
)
from .routing import (
    DomainRouter,
    RoutedResponse,
    UnroutableQuestionError,
    build_lexicon,
)
from .service import ServiceResponse, TextToSQLService, percentile
from .webapp import InteractionLog, WebBackend

__all__ = [
    "AUTO_LABEL_THRESHOLD",
    "DomainRouter",
    "InteractionLog",
    "LabelingPipeline",
    "LabelingSuggestion",
    "RoutedResponse",
    "ServiceResponse",
    "TextToSQLService",
    "UnroutableQuestionError",
    "VerifiedPair",
    "WebBackend",
    "build_lexicon",
    "percentile",
]
