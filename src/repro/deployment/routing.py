"""Multi-domain service routing (the deployment grows beyond football).

One :class:`DomainRouter` fronts several per-domain
:class:`~repro.deployment.service.TextToSQLService` instances.  A
question is either routed explicitly (``ask(question, domain="retail")``)
or scored against each domain's lexicon — schema identifiers plus
sampled data values, the same signals schema-linking uses — and
dispatched to the best match.  Responses carry the chosen domain so the
web layer can render provenance, and :meth:`metrics` aggregates the
per-domain service metrics next to the router's own counters.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sqlengine import Database

from .service import ServiceResponse, TextToSQLService

_TOKEN = re.compile(r"[a-z0-9]+")

#: question words carry no domain signal; keep the lexicons sharp
_STOPWORDS = frozenset(
    "a an and are at by does do did for from has have how in is it list of on"
    " or per show tell the their there to was were what when where which who"
    " whose many much name number count total average highest lowest most"
    " more than above over under each all any every".split()
)


def _tokens(text: str) -> Set[str]:
    out: Set[str] = set()
    for token in _TOKEN.findall(text.lower()):
        if token in _STOPWORDS or len(token) <= 1:
            continue
        out.add(token)
        # naive depluralization so "doctors" meets the "doctor" table
        if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
            out.add(token[:-1])
    return out


def build_lexicon(database: Database, value_sample: int = 40) -> Set[str]:
    """A domain's recognizable vocabulary: identifiers + data values.

    Table and column names are split on underscores (``national_team``
    contributes ``national`` and ``team``); text columns contribute a
    deterministic sample of their values' tokens.
    """
    lexicon: Set[str] = set()
    for table in database.schema.tables:
        lexicon |= _tokens(table.name.replace("_", " "))
        for column in table.columns:
            lexicon |= _tokens(column.name.replace("_", " "))
    for table in database.schema.tables:
        rows = database.table_data(table.name).rows
        step = max(1, len(rows) // value_sample)
        for position, column in enumerate(table.columns):
            for row in rows[::step][:value_sample]:
                value = row[position]
                if isinstance(value, str):
                    lexicon |= _tokens(value)
    return lexicon


@dataclass(frozen=True)
class RoutedResponse:
    """A service response plus where (and why) it was routed."""

    domain: str
    response: ServiceResponse
    score: float  # lexicon overlap that won the routing (1.0 if explicit)
    explicit: bool  # True when the caller named the domain


class UnroutableQuestionError(KeyError):
    """Raised when a question matches no registered domain."""


class DomainRouter:
    """Dispatches questions across per-domain Text-to-SQL services."""

    def __init__(self, default_domain: Optional[str] = None) -> None:
        self._services: Dict[str, TextToSQLService] = {}
        self._lexicons: Dict[str, Set[str]] = {}
        self.default_domain = default_domain
        self._lock = threading.Lock()
        self._routed = 0
        self._explicit = 0
        self._fallbacks = 0
        self._per_domain: Dict[str, int] = {}

    # -- registration ---------------------------------------------------------
    def add_domain(
        self,
        name: str,
        service: Optional[TextToSQLService],
        lexicon: Optional[Iterable[str]] = None,
    ) -> None:
        """Register a per-domain service (first one becomes the default).

        The lexicon defaults to :func:`build_lexicon` over the service's
        database; pass an explicit iterable to override or extend.
        ``service=None`` registers a *remote* domain — routable by
        lexicon but served elsewhere (the async serving tier dispatches
        these to shard workers); a remote domain must therefore supply
        its lexicon explicitly.
        """
        if service is None and lexicon is None:
            raise ValueError(
                f"domain {name!r} has no local service; an explicit lexicon "
                "is required to route it"
            )
        if lexicon is not None:
            tokens = set(lexicon)
        else:
            tokens = build_lexicon(service.database)
        with self._lock:
            if name in self._services:
                raise ValueError(f"domain {name!r} already routed")
            self._services[name] = service
            self._lexicons[name] = tokens
            if self.default_domain is None:
                self.default_domain = name

    @property
    def domains(self) -> List[str]:
        with self._lock:
            return list(self._services)

    def service(self, name: str) -> TextToSQLService:
        with self._lock:
            known = list(self._services)
            found = name in self._services
            service = self._services.get(name)
        if not found:
            raise UnroutableQuestionError(
                f"unknown domain {name!r} (routed: {', '.join(known)})"
            )
        if service is None:
            raise UnroutableQuestionError(
                f"domain {name!r} is routed remotely (no in-process service)"
            )
        return service

    # -- routing ---------------------------------------------------------------
    def route(self, question: str) -> Tuple[str, float]:
        """Best domain for ``question`` and its overlap score.

        Ties break by registration order; a zero-overlap question falls
        back to :attr:`default_domain`.
        """
        # snapshot under the lock: scoring while another thread registers
        # a domain would otherwise die mid-iteration ("dictionary changed
        # size during iteration")
        with self._lock:
            if not self._services:
                raise UnroutableQuestionError("no domains registered")
            lexicons = list(self._lexicons.items())
            default = (
                self.default_domain
                if self.default_domain in self._services
                else lexicons[0][0]
            )
        tokens = _tokens(question)
        best_name, best_score = None, 0.0
        for name, lexicon in lexicons:
            if not tokens:
                break
            score = len(tokens & lexicon) / len(tokens)
            if score > best_score:
                best_name, best_score = name, score
        if best_name is None:
            # a constructor-supplied default may name a domain that was
            # never registered — fall back to the first registered one
            return default, 0.0
        return best_name, best_score

    def ask(self, question: str, domain: Optional[str] = None) -> RoutedResponse:
        """Route and answer one question."""
        explicit = domain is not None
        if explicit:
            service = self.service(domain)
            score = 1.0
            name = domain
        else:
            name, score = self.route(question)
            service = self.service(name)
        response = service.ask(question)
        with self._lock:
            self._routed += 1
            if explicit:
                self._explicit += 1
            elif score == 0.0:
                self._fallbacks += 1
            self._per_domain[name] = self._per_domain.get(name, 0) + 1
        return RoutedResponse(name, response, score, explicit)

    def ask_many(
        self, questions: Sequence[str], domain: Optional[str] = None
    ) -> List[RoutedResponse]:
        return [self.ask(question, domain=domain) for question in questions]

    # -- observability -----------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Router counters plus every per-domain service's metrics."""
        with self._lock:
            routed = self._routed
            explicit = self._explicit
            fallbacks = self._fallbacks
            per_domain = dict(self._per_domain)
            services = dict(self._services)
        return {
            "questions_routed": routed,
            "explicit_routes": explicit,
            "fallback_routes": fallbacks,
            "questions_per_domain": per_domain,
            "domains": {
                name: service.metrics()
                for name, service in services.items()
                if service is not None
            },
        }
