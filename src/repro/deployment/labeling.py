"""The Challenge-4 labeling pipeline (paper Section 4).

Manual labeling was the deployment's bottleneck; two automations cut it
down:

1. **auto-labeling** — a question whose embedding is ≥ 0.96 cosine to an
   already-verified question inherits that question's verified SQL;
2. **labeler assistance** — below the threshold, the most similar
   verified pair is surfaced next to the candidate so annotators spot
   missing filters/joins faster.

The pipeline also consumes the live feedback signals: thumbs-up
predictions enter the verified pool after manual confirmation, and
expert-corrected SQL is trusted directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.nlp.embedding import cosine, embed
from repro.workload.logs import Feedback, LogRecord

AUTO_LABEL_THRESHOLD = 0.96


@dataclass(frozen=True)
class VerifiedPair:
    question: str
    sql: str
    source: str  # 'manual' | 'auto' | 'expert_correction' | 'confirmed_prediction'


@dataclass(frozen=True)
class LabelingSuggestion:
    """What the labeling UI shows for one unverified question."""

    question: str
    proposed_sql: Optional[str]
    similar_question: Optional[str]
    similar_sql: Optional[str]
    similarity: float
    auto_labeled: bool


class LabelingPipeline:
    """Accumulates verified NL/SQL pairs and assists new labeling."""

    def __init__(self, threshold: float = AUTO_LABEL_THRESHOLD) -> None:
        self.threshold = threshold
        self._verified: List[VerifiedPair] = []
        self._vectors: List[List[float]] = []

    # -- pool management -------------------------------------------------------
    def add_verified(self, question: str, sql: str, source: str = "manual") -> None:
        self._verified.append(VerifiedPair(question, sql, source))
        self._vectors.append(embed(question))

    @property
    def verified_pairs(self) -> List[VerifiedPair]:
        return list(self._verified)

    def ingest_feedback(self, records: Sequence[LogRecord]) -> Dict[str, int]:
        """Harvest expert signals from the live log.

        Corrected SQL is trusted; thumbs-up predictions are queued as
        'confirmed' (the paper still manually verified them — we mark
        the provenance so the verification step can prioritize).
        """
        counts = {"expert_correction": 0, "confirmed_prediction": 0}
        for record in records:
            if record.corrected_sql is not None:
                self.add_verified(
                    record.question, record.corrected_sql, "expert_correction"
                )
                counts["expert_correction"] += 1
            elif (
                record.feedback is Feedback.THUMBS_UP
                and record.predicted_sql is not None
            ):
                self.add_verified(
                    record.question, record.predicted_sql, "confirmed_prediction"
                )
                counts["confirmed_prediction"] += 1
        return counts

    # -- assistance ---------------------------------------------------------------
    def suggest(self, question: str) -> LabelingSuggestion:
        """Auto-label or surface the closest verified pair."""
        if not self._verified:
            return LabelingSuggestion(question, None, None, None, 0.0, False)
        vector = embed(question)
        best_index = max(
            range(len(self._vectors)),
            key=lambda index: cosine(vector, self._vectors[index]),
        )
        similarity = cosine(vector, self._vectors[best_index])
        neighbour = self._verified[best_index]
        if similarity >= self.threshold:
            return LabelingSuggestion(
                question, neighbour.sql, neighbour.question, neighbour.sql,
                similarity, auto_labeled=True,
            )
        return LabelingSuggestion(
            question, None, neighbour.question, neighbour.sql, similarity,
            auto_labeled=False,
        )

    def label_batch(
        self,
        questions: Sequence[str],
        manual_labeler: Callable[[str, LabelingSuggestion], str],
    ) -> Tuple[List[VerifiedPair], int]:
        """Label ``questions``; returns (new pairs, #manual efforts).

        ``manual_labeler`` is invoked only below the threshold — its
        call count is the manual-effort metric the automation reduces.
        """
        manual_calls = 0
        produced: List[VerifiedPair] = []
        for question in questions:
            suggestion = self.suggest(question)
            if suggestion.auto_labeled and suggestion.proposed_sql is not None:
                self.add_verified(question, suggestion.proposed_sql, "auto")
                produced.append(self._verified[-1])
                continue
            manual_calls += 1
            sql = manual_labeler(question, suggestion)
            self.add_verified(question, sql, "manual")
            produced.append(self._verified[-1])
        return produced, manual_calls
