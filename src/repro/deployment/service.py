"""The deployed Text-to-SQL service (paper Figure 2).

Wires a :class:`TextToSQLSystem` to a database connector: a user
question goes in, the predicted SQL is executed, and both the SQL and
its result rows come back — exactly the loop the web back-end exposed
during the World Cup deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sqlengine import Database, EngineError
from repro.systems import Prediction, TextToSQLSystem


@dataclass(frozen=True)
class ServiceResponse:
    """What the web back-end returns for one question."""

    question: str
    predicted_sql: Optional[str]
    columns: Tuple[str, ...]
    rows: Tuple[tuple, ...]
    error: Optional[str]
    latency_seconds: float

    @property
    def answered(self) -> bool:
        return self.predicted_sql is not None and self.error is None


class TextToSQLService:
    """predict → execute → respond, with defensive execution."""

    def __init__(self, system: TextToSQLSystem, database: Database,
                 max_rows: int = 100) -> None:
        self.system = system
        self.database = database
        self.max_rows = max_rows

    def ask(self, question: str) -> ServiceResponse:
        prediction: Prediction = self.system.predict(question)
        if prediction.sql is None:
            return ServiceResponse(
                question=question,
                predicted_sql=None,
                columns=(),
                rows=(),
                error=prediction.failure or "no SQL generated",
                latency_seconds=prediction.latency_seconds,
            )
        try:
            result = self.database.execute(prediction.sql)
        except EngineError as exc:
            return ServiceResponse(
                question=question,
                predicted_sql=prediction.sql,
                columns=(),
                rows=(),
                error=f"execution failed: {exc}",
                latency_seconds=prediction.latency_seconds,
            )
        return ServiceResponse(
            question=question,
            predicted_sql=prediction.sql,
            columns=tuple(result.columns),
            rows=tuple(result.rows[: self.max_rows]),
            error=None,
            latency_seconds=prediction.latency_seconds,
        )
