"""The deployed Text-to-SQL service (paper Figure 2).

Wires a :class:`TextToSQLSystem` to a database connector: a user
question goes in, the predicted SQL is executed, and both the SQL and
its result rows come back — exactly the loop the web back-end exposed
during the World Cup deployment.

Serving fast path: predicted SQL goes through the database's plan
cache (Section "query-plan cache" in docs/ARCHITECTURE.md), an
optional LRU *response* cache short-circuits repeated questions
entirely, and the service keeps a latency log so operators can read
p50/p95/p99 off :meth:`TextToSQLService.metrics`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import percentile
from repro.obs.tracing import NOOP_SPAN
from repro.sqlengine import Database, EngineError, LRUCache
from repro.systems import Prediction, TextToSQLSystem

__all__ = ["ServiceResponse", "TextToSQLService", "percentile"]


@dataclass(frozen=True)
class ServiceResponse:
    """What the web back-end returns for one question."""

    question: str
    predicted_sql: Optional[str]
    columns: Tuple[str, ...]
    rows: Tuple[tuple, ...]
    error: Optional[str]
    latency_seconds: float
    from_cache: bool = False

    @property
    def answered(self) -> bool:
        return self.predicted_sql is not None and self.error is None


class TextToSQLService:
    """predict → execute → respond, with defensive execution.

    ``response_cache_size`` > 0 enables an LRU keyed on the verbatim
    question text; only *answered* responses are cached (failures stay
    retryable).  A cache hit is served at zero latency, which is the
    realistic deployment behaviour the Table 7 latency discussion
    assumes for repeated World Cup questions.  The cache
    self-invalidates on database mutation: every ``ask`` compares the
    database's mutation epoch (``Database.data_epoch``, bumped by any
    insert or rollback) against the epoch the cache was filled under
    and drops all entries on mismatch, so stale rows are never served
    after a write.  Inserts are stamped with the epoch observed *before*
    prediction and rejected if the database (or a concurrent
    invalidation) moved past it — a mid-request mutation can therefore
    never pin a pre-mutation answer into a freshly-stamped cache.
    :meth:`clear_response_cache` remains available for manual resets.

    Latency percentiles are computed over a sliding window of the most
    recent ``latency_window`` responses, so a long-running service
    stays at constant memory and :meth:`metrics` reflects current
    behaviour rather than all-time history.
    """

    DEFAULT_LATENCY_WINDOW = 8192

    def __init__(
        self,
        system: TextToSQLSystem,
        database: Database,
        max_rows: int = 100,
        response_cache_size: int = 0,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        tracer: Optional[Any] = None,
    ) -> None:
        self.system = system
        self.database = database
        self.max_rows = max_rows
        # Optional repro.obs.Tracer: when set, ask/ask_batch emit
        # service.* spans (prediction, cache verdicts) that nest under
        # the caller's span and over the database's db.* spans.
        self.tracer = tracer
        # Optional registry-backed latency histogram, attached by
        # repro.obs.bind_service; observed alongside the sliding window.
        self._latency_hist: Optional[Any] = None
        self.response_cache: Optional[LRUCache] = (
            LRUCache(response_cache_size) if response_cache_size else None
        )
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._questions_served = 0
        self._questions_answered = 0
        self._cache_epoch = database.data_epoch()
        self._cache_invalidations = 0
        self._cache_stale_rejections = 0
        # guards the counters and latency log under concurrent ask()
        self._metrics_lock = threading.Lock()

    def _span(self, name: str, **labels: Any):
        """A tracer span when tracing is on, the shared no-op otherwise
        (keeps the disabled path to one attribute read per call site)."""
        tracer = self.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(name, **labels)

    def ask(self, question: str) -> ServiceResponse:
        with self._span("service.ask") as span:
            observed_epoch: Optional[int] = None
            if self.response_cache is not None:
                observed_epoch = self._invalidate_if_mutated()
                cached = self.response_cache.get(question)
                if cached is not None:
                    span.set_label("from_cache", True)
                    return self._record(
                        replace(cached, from_cache=True, latency_seconds=0.0)
                    )
            response = self._answer(question)
            if self.response_cache is not None and response.answered:
                self._cache_insert(question, response, observed_epoch)
            span.set_label("answered", response.answered)
            return self._record(response)

    def ask_many(self, questions: Iterable[str]) -> List[ServiceResponse]:
        """Batched serving: one response per question, in order.

        Repeated questions within the batch hit the response cache and
        repeated predicted SQL hits the engine's plan cache, so large
        batches amortize both parse and prediction work.
        """
        return [self.ask(question) for question in questions]

    def ask_batch(self, questions: Sequence[str]) -> List[ServiceResponse]:
        """Coalesced batch serving: the path the async tier dispatches to.

        Differs from :meth:`ask_many` in two ways that matter at high
        request rates: repeated questions within the batch share one
        prediction (they are answered once and fanned out), and every
        predicted SQL of the batch executes through one
        ``Database.execute_many`` call so plan-cache-warm statements run
        back to back.  On any execution error the batch falls back to
        per-statement execution so one poison query cannot fail its
        neighbours.  Responses come back in question order and counters
        advance exactly as if each question had gone through :meth:`ask`.
        """
        questions = list(questions)
        with self._span("service.ask_batch", questions=len(questions)) as batch_span:
            return self._ask_batch(questions, batch_span)

    def _ask_batch(self, questions: List[str], batch_span) -> List[ServiceResponse]:
        observed_epoch: Optional[int] = None
        if self.response_cache is not None:
            observed_epoch = self._invalidate_if_mutated()
        responses: Dict[int, ServiceResponse] = {}
        distinct: Dict[str, List[int]] = {}
        for index, question in enumerate(questions):
            if self.response_cache is not None:
                cached = self.response_cache.get(question)
                if cached is not None:
                    responses[index] = replace(
                        cached, from_cache=True, latency_seconds=0.0
                    )
                    continue
            distinct.setdefault(question, []).append(index)
        batch_span.set_label("distinct", len(distinct))
        executable: List[Tuple[str, Prediction]] = []
        for question, indexes in distinct.items():
            with self._span("service.predict") as span:
                prediction: Prediction = self.system.predict(question)
                span.set_label("ok", prediction.sql is not None)
            if prediction.sql is None:
                failed = ServiceResponse(
                    question=question,
                    predicted_sql=None,
                    columns=(),
                    rows=(),
                    error=prediction.failure or "no SQL generated",
                    latency_seconds=prediction.latency_seconds,
                )
                for index in indexes:
                    responses[index] = failed
            else:
                executable.append((question, prediction))
        for (question, prediction), result_or_error in zip(
            executable, self._execute_batch([p.sql for _, p in executable])
        ):
            if isinstance(result_or_error, EngineError):
                response = ServiceResponse(
                    question=question,
                    predicted_sql=prediction.sql,
                    columns=(),
                    rows=(),
                    error=f"execution failed: {result_or_error}",
                    latency_seconds=prediction.latency_seconds,
                )
            else:
                response = ServiceResponse(
                    question=question,
                    predicted_sql=prediction.sql,
                    columns=tuple(result_or_error.columns),
                    rows=tuple(result_or_error.rows[: self.max_rows]),
                    error=None,
                    latency_seconds=prediction.latency_seconds,
                )
                if self.response_cache is not None:
                    self._cache_insert(question, response, observed_epoch)
            for index in distinct[question]:
                responses[index] = response
        return [self._record(responses[index]) for index in range(len(questions))]

    def _execute_batch(self, sqls: List[str]) -> List[Any]:
        """Execute ``sqls``, one Result (or EngineError) per statement.

        The happy path is a single ``execute_many`` call; if any
        statement raises, the batch re-runs statement by statement (the
        plan cache makes the redo cheap) so errors stay isolated.
        """
        if not sqls:
            return []
        try:
            return list(self.database.execute_many(sqls))
        except EngineError:
            out: List[Any] = []
            for sql in sqls:
                try:
                    out.append(self.database.execute(sql))
                except EngineError as exc:
                    out.append(exc)
            return out

    def _answer(self, question: str) -> ServiceResponse:
        with self._span("service.predict") as span:
            prediction: Prediction = self.system.predict(question)
            span.set_label("ok", prediction.sql is not None)
        if prediction.sql is None:
            return ServiceResponse(
                question=question,
                predicted_sql=None,
                columns=(),
                rows=(),
                error=prediction.failure or "no SQL generated",
                latency_seconds=prediction.latency_seconds,
            )
        try:
            result = self.database.execute(prediction.sql)
        except EngineError as exc:
            return ServiceResponse(
                question=question,
                predicted_sql=prediction.sql,
                columns=(),
                rows=(),
                error=f"execution failed: {exc}",
                latency_seconds=prediction.latency_seconds,
            )
        return ServiceResponse(
            question=question,
            predicted_sql=prediction.sql,
            columns=tuple(result.columns),
            rows=tuple(result.rows[: self.max_rows]),
            error=None,
            latency_seconds=prediction.latency_seconds,
        )

    def _record(self, response: ServiceResponse) -> ServiceResponse:
        with self._metrics_lock:
            self._questions_served += 1
            if response.answered:
                self._questions_answered += 1
            self._latencies.append(response.latency_seconds)
        hist = self._latency_hist
        if hist is not None:
            hist.observe(response.latency_seconds)
        return response

    def _invalidate_if_mutated(self) -> int:
        """Drop cached responses when the database changed underneath us.

        The clear happens inside the lock, *before* the new epoch is
        published: any thread that later observes a matching epoch is
        therefore guaranteed (lock ordering) the stale entries are
        already gone — there is no window to serve pre-mutation rows.

        Returns the epoch this request observed; :meth:`_cache_insert`
        uses it to reject answers computed against data that has since
        mutated.
        """
        epoch = self.database.data_epoch()
        with self._metrics_lock:
            # strictly newer only: a lagging thread whose read predates a
            # concurrent invalidation must not clear fresh entries again
            if epoch > self._cache_epoch:
                self.response_cache.clear()
                self._cache_epoch = epoch
                self._cache_invalidations += 1
            return epoch

    def _cache_insert(
        self, question: str, response: ServiceResponse, observed_epoch: Optional[int]
    ) -> None:
        """Insert iff no mutation happened since ``observed_epoch``.

        Closes the TOCTOU between the epoch check at admission and the
        insert after prediction: a request that raced a mutation (or a
        concurrent invalidation by another thread) would otherwise pin
        its pre-mutation answer into a cache already stamped with the
        *new* epoch, where nothing would ever evict it.  Both
        comparisons happen under the lock that orders invalidations,
        so a rejected insert can never resurrect stale rows.
        """
        with self._metrics_lock:
            if (
                observed_epoch == self._cache_epoch
                and observed_epoch == self.database.data_epoch()
            ):
                self.response_cache.put(question, response)
            else:
                self._cache_stale_rejections += 1

    def clear_response_cache(self) -> None:
        """Drop all cached responses (manual reset; mutation-driven
        invalidation happens automatically on the next ``ask``)."""
        if self.response_cache is not None:
            self.response_cache.clear()

    # -- observability -------------------------------------------------------
    def counter_stats(self) -> Dict[str, Any]:
        """Flat numeric counters for registry pull collectors.

        Unlike :meth:`metrics` this never sorts the latency window (the
        registry histogram covers latency), so scraping stays cheap.
        """
        with self._metrics_lock:
            served = self._questions_served
            answered = self._questions_answered
            invalidations = self._cache_invalidations
            stale_rejections = self._cache_stale_rejections
        stats: Dict[str, Any] = {
            "questions_served": served,
            "questions_answered": answered,
            "answer_rate": answered / served if served else 0.0,
            "cache_invalidations": invalidations,
            "cache_stale_insert_rejections": stale_rejections,
        }
        if self.response_cache is not None:
            stats["response_cache"] = self.response_cache.stats()
        return stats

    def metrics(self) -> Dict[str, Any]:
        """Service-level counters and latency percentiles.

        Percentiles cover the most recent ``latency_window`` responses,
        cache hits included (at 0.0s) — the distribution a load
        balancer in front of this service would observe.
        """
        with self._metrics_lock:
            latencies = sorted(self._latencies)
            served = self._questions_served
            answered = self._questions_answered
            invalidations = self._cache_invalidations
            stale_rejections = self._cache_stale_rejections
        count = len(latencies)
        cache_stats = (
            self.response_cache.stats() if self.response_cache is not None else None
        )
        if cache_stats is not None:
            cache_stats["invalidations"] = invalidations
            cache_stats["stale_insert_rejections"] = stale_rejections
        return {
            "questions_served": served,
            "questions_answered": answered,
            "answer_rate": answered / served if served else 0.0,
            "latency_window_size": count,
            "mean_latency_seconds": sum(latencies) / count if count else 0.0,
            "p50_latency_seconds": percentile(latencies, 0.50),
            "p95_latency_seconds": percentile(latencies, 0.95),
            "p99_latency_seconds": percentile(latencies, 0.99),
            "response_cache": cache_stats,
            "plan_cache": self.database.plan_cache_stats(),
            "optimizer": self.database.optimizer_stats(),
            "engine_modes": self.database.engine_mode_stats(),
        }
