"""The web back-end of the deployment (paper Figure 2), network-free.

A minimal request/response application object exposing the REST routes
the real deployment had: ``POST /ask`` (question in, SQL + rows out),
``POST /feedback`` (thumbs up/down), ``POST /correct`` (expert SQL fix),
``GET /logs`` (the logging table Table 1 is computed from).  No sockets
— handlers are called directly, which is all the simulation and tests
need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.logs import Feedback, LogRecord, QuestionCategory, Table1Stats, summarize

from .service import ServiceResponse, TextToSQLService


@dataclass
class InteractionLog:
    """One stored interaction, mutable so feedback can attach later."""

    log_id: int
    question: str
    predicted_sql: Optional[str]
    error: Optional[str]
    feedback: Feedback = Feedback.NONE
    corrected_sql: Optional[str] = None

    def as_record(self) -> LogRecord:
        return LogRecord(
            log_id=self.log_id,
            question=self.question,
            category=QuestionCategory.CLEAN,
            intent=None,
            sql_generated=self.predicted_sql is not None,
            predicted_sql=self.predicted_sql,
            prediction_correct=None,
            feedback=self.feedback,
            corrected_sql=self.corrected_sql,
        )


class WebBackend:
    """The deployment's application object.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) adds the
    operational routes: ``GET /metrics`` (Prometheus text exposition)
    and ``GET /metrics.json`` (the structured snapshot).  ``tracer``
    (a :class:`repro.obs.Tracer`) adds ``GET /trace/<id>`` serving
    stored request traces re-nested as span trees, plus ``GET /traces``
    listing stored ids.  When a registry is given the service is bound
    into it automatically, so one scrape covers service + engine
    counters.
    """

    def __init__(
        self,
        service: TextToSQLService,
        registry=None,
        tracer=None,
    ) -> None:
        self.service = service
        self.registry = registry
        self.tracer = tracer
        if registry is not None:
            from repro.obs import bind_service

            bind_service(registry, service)
        if tracer is not None and service.tracer is None:
            service.tracer = tracer
            if service.database.tracer is None:
                service.database.tracer = tracer
        self._logs: List[InteractionLog] = []
        # orders log-id allocation: `len + 1` then `append` is a
        # read-modify-write that hands out duplicate ids under
        # concurrent /ask without it
        self._log_lock = threading.Lock()

    # -- routes ---------------------------------------------------------------
    def ask(self, question: str) -> Dict[str, object]:
        """POST /ask"""
        response: ServiceResponse = self.service.ask(question)
        with self._log_lock:
            log = InteractionLog(
                log_id=len(self._logs) + 1,
                question=question,
                predicted_sql=response.predicted_sql,
                error=response.error,
            )
            self._logs.append(log)
        return {
            "log_id": log.log_id,
            "sql": response.predicted_sql,
            "columns": list(response.columns),
            "rows": [list(row) for row in response.rows],
            "error": response.error,
            "latency_seconds": response.latency_seconds,
        }

    def feedback(self, log_id: int, thumbs_up: bool) -> Dict[str, object]:
        """POST /feedback — the expert-user thumbs interface."""
        log = self._log(log_id)
        log.feedback = Feedback.THUMBS_UP if thumbs_up else Feedback.THUMBS_DOWN
        return {"log_id": log_id, "feedback": log.feedback.value}

    def correct(self, log_id: int, corrected_sql: str) -> Dict[str, object]:
        """POST /correct — SQL experts can fix the generated query."""
        log = self._log(log_id)
        log.corrected_sql = corrected_sql
        return {"log_id": log_id, "stored": True}

    def logs(self) -> List[LogRecord]:
        """GET /logs"""
        with self._log_lock:
            snapshot = list(self._logs)
        return [log.as_record() for log in snapshot]

    def statistics(self) -> Table1Stats:
        """The deployment's Table 1 aggregation."""
        return summarize(self.logs())

    def metrics_text(self) -> str:
        """GET /metrics — Prometheus 0.0.4 text exposition."""
        if self.registry is None:
            raise RuntimeError("no MetricsRegistry configured")
        return self.registry.render()

    def metrics_json(self) -> Dict[str, object]:
        """GET /metrics.json — the registry's structured snapshot."""
        if self.registry is None:
            raise RuntimeError("no MetricsRegistry configured")
        return self.registry.snapshot()

    def traces(self) -> List[str]:
        """GET /traces — ids of the stored (most recent) traces."""
        if self.tracer is None:
            raise RuntimeError("no Tracer configured")
        return self.tracer.store.trace_ids()

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """GET /trace/<id> — one trace re-nested as a span tree."""
        if self.tracer is None:
            raise RuntimeError("no Tracer configured")
        tree = self.tracer.store.tree(trace_id)
        if tree is None:
            raise KeyError(f"unknown trace id {trace_id}")
        return tree

    # -- internals ----------------------------------------------------------------
    def _log(self, log_id: int) -> InteractionLog:
        if not 1 <= log_id <= len(self._logs):
            raise KeyError(f"unknown log id {log_id}")
        return self._logs[log_id - 1]
