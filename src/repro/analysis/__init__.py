"""Query analysis toolkit.

Three pieces, all operating on the shared engine AST:

* :mod:`repro.analysis.characteristics` — the per-query structural
  counts behind the paper's Table 3 and Figure 8;
* :mod:`repro.analysis.hardness` — the Spider hardness classifier used
  for sampling and for Figure 7;
* :mod:`repro.analysis.spider_parser` — a faithful re-creation of the
  Spider SQL parser's *interface and limitations* (it rejects repeated
  table instances), which gates ValueNet's pre-processing.
"""

from .characteristics import QueryCharacteristics, analyze_query, mean_characteristics
from .hardness import Hardness, classify_hardness, hardness_score
from .spider_parser import SpiderParseError, SpiderSQL, spider_parse

__all__ = [
    "Hardness",
    "QueryCharacteristics",
    "SpiderParseError",
    "SpiderSQL",
    "analyze_query",
    "classify_hardness",
    "hardness_score",
    "mean_characteristics",
    "spider_parse",
]
