"""A Spider-style SQL parser with the original's documented limitations.

Many Text-to-SQL systems (IRNet, ValueNet, RAT-SQL) pre-process their
training pairs through the SQL parser released with the Spider
benchmark.  That parser normalizes queries into a JSON-ish structure —
but it cannot represent several constructs, and the paper leans on two
of its failure modes:

1. **Multiple instances of the same table.**  Spider's structure keys
   join conditions by *table*, not by table *instance*, so a query that
   joins ``national_team`` twice under different aliases (Figure 4, v1
   and v2) cannot pass through.  Quote: "The parser does not support
   multiple table instances with different table aliases."
2. **Limited grammar.**  LEFT JOIN, CASE, CAST and correlated EXISTS are
   outside the Spider grammar; queries using them are rejected (the
   paper's "105 of 1K samples cannot be processed" for ValueNet).

:func:`spider_parse` either returns a :class:`SpiderSQL` summary or
raises :class:`SpiderParseError` with a machine-readable ``reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.sqlengine import (
    CaseExpr,
    FunctionCall,
    JoinKind,
    ParseError,
    QueryNode,
    SelectQuery,
    SetOperation,
    TokenizeError,
    parse_sql,
)


class SpiderParseError(Exception):
    """Raised when a query is outside the Spider parser's coverage."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


REASON_INVALID_SQL = "invalid_sql"
REASON_REPEATED_TABLE = "repeated_table_instance"
REASON_UNSUPPORTED_JOIN = "unsupported_join_type"
REASON_UNSUPPORTED_EXPR = "unsupported_expression"


@dataclass
class SpiderSQL:
    """Normalized (Spider-like) view of one parsed query."""

    tables: List[str]
    select_columns: int
    where_conditions: int
    group_by: bool
    order_by: bool
    limit: bool
    set_operation: Optional[str]
    nested: bool

    @property
    def join_count(self) -> int:
        return max(0, len(self.tables) - 1)


def spider_parse(query: Union[str, QueryNode]) -> SpiderSQL:
    """Parse ``query`` the way Spider's evaluation parser would.

    Raises :class:`SpiderParseError` for anything the original cannot
    represent.
    """
    if isinstance(query, str):
        try:
            node = parse_sql(query)
        except (ParseError, TokenizeError) as exc:
            raise SpiderParseError(REASON_INVALID_SQL, str(exc)) from exc
    else:
        node = query
    set_operation: Optional[str] = None
    if isinstance(node, SetOperation):
        set_operation = node.operator.value
    tables: List[str] = []
    for core in node.iter_selects():
        _check_core(core)
        for ref in core.table_refs:
            tables.append(ref.table.lower())
    _check_repeated_instances(node)
    first = node
    while isinstance(first, SetOperation):
        first = first.left
    from .characteristics import count_atomic_predicates
    from repro.sqlengine import iter_subqueries

    nested = any(True for _ in iter_subqueries(node))
    return SpiderSQL(
        tables=sorted(set(tables)),
        select_columns=len(first.projections),
        where_conditions=(
            count_atomic_predicates(first.where) if first.where is not None else 0
        ),
        group_by=bool(first.group_by),
        order_by=bool(first.order_by),
        limit=first.limit is not None,
        set_operation=set_operation,
        nested=nested,
    )


def can_spider_parse(query: Union[str, QueryNode]) -> bool:
    """Convenience predicate used by ValueNet's training-data filter."""
    try:
        spider_parse(query)
    except SpiderParseError:
        return False
    return True


def _check_core(core: SelectQuery) -> None:
    for join in core.joins:
        if join.kind is not JoinKind.INNER:
            raise SpiderParseError(
                REASON_UNSUPPORTED_JOIN,
                f"{join.kind.value} is outside the Spider grammar",
            )
    for expr in core.iter_expressions():
        for n in expr.walk():
            if isinstance(n, CaseExpr):
                raise SpiderParseError(
                    REASON_UNSUPPORTED_EXPR, "CASE expressions are unsupported"
                )
            if isinstance(n, FunctionCall) and n.name == "cast":
                raise SpiderParseError(
                    REASON_UNSUPPORTED_EXPR, "CAST is unsupported"
                )


def _check_repeated_instances(node: QueryNode) -> None:
    """Reject any select core that instantiates one base table twice.

    This is the load-bearing limitation: the v1/v2 'Germany vs Brazil'
    queries join ``national_team`` (v1) or ``plays_as_home``/``match``
    (v2, with ``national_team`` twice) under two aliases, which the
    Spider structure cannot express.
    """
    for core in node.iter_selects():
        seen = set()
        for ref in core.table_refs:
            name = ref.table.lower()
            if name in seen:
                raise SpiderParseError(
                    REASON_REPEATED_TABLE,
                    f"table {ref.table!r} instantiated more than once",
                )
            seen.add(name)
