"""Structural query characteristics (paper Table 3 / Figure 8).

The paper reports, per query: number of joins, projections, filters,
aggregations, set operations and subqueries, plus the character length.
This module computes those counts from the engine AST so that gold and
predicted SQL are measured identically.

Counting conventions (documented because Table 3 depends on them):

* **joins** — JOIN clauses across *all* select cores of the query,
  including set-operation branches and subqueries;
* **projections** — select-list items of the first (leftmost) core: the
  user-visible output width;
* **filters** — atomic predicates inside WHERE clauses (conjunctions are
  flattened; join ON conditions are *not* filters);
* **aggregations** — aggregate function calls in projections, HAVING and
  ORDER BY across all cores;
* **set operations** — UNION/INTERSECT/EXCEPT nodes;
* **subqueries** — nested SELECTs inside expressions (IN/EXISTS/scalar).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, List, Union

from repro.sqlengine import (
    BetweenOp,
    BinaryOp,
    Conjunction,
    ExistsOp,
    Expression,
    InOp,
    IsNullOp,
    LikeOp,
    QueryNode,
    SelectQuery,
    SetOperation,
    UnaryOp,
    contains_aggregate,
    is_aggregate_call,
    iter_subqueries,
    parse_sql,
)

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


@dataclass(frozen=True)
class QueryCharacteristics:
    """Structural counts for one SQL query."""

    joins: int
    projections: int
    filters: int
    aggregations: int
    set_operations: int
    subqueries: int
    length: int

    def bucket_labels(self) -> List[str]:
        """The Figure 8 buckets this query falls into."""
        labels = []
        if self.filters == 1:
            labels.append("1 filter")
        elif self.filters >= 2:
            labels.append(">=2 filter")
        if self.projections == 1:
            labels.append("1 project")
        elif self.projections >= 2:
            labels.append(">=2 project")
        if self.joins == 1:
            labels.append("1 join")
        elif self.joins >= 2:
            labels.append(">=2 join")
        if self.aggregations >= 1:
            labels.append(">=1 agg")
        if self.set_operations >= 1:
            labels.append(">=1 set")
        return labels


FIGURE8_BUCKETS = [
    "1 filter",
    ">=2 filter",
    "1 project",
    ">=2 project",
    "1 join",
    ">=2 join",
    ">=1 agg",
    ">=1 set",
]


def analyze_query(query: Union[str, QueryNode]) -> QueryCharacteristics:
    """Compute :class:`QueryCharacteristics` for SQL text or an AST."""
    if isinstance(query, str):
        node = parse_sql(query)
        length = len(query.strip())
    else:
        node = query
        from repro.sqlengine import format_query

        length = len(format_query(node))
    cores = _all_cores(node)
    return QueryCharacteristics(
        joins=sum(len(core.joins) for core in cores),
        projections=len(_first_core(node).projections),
        filters=sum(
            count_atomic_predicates(core.where)
            for core in cores
            if core.where is not None
        ),
        aggregations=_count_aggregations(cores),
        set_operations=_count_set_operations(node),
        subqueries=sum(1 for _ in iter_subqueries(node)),
        length=length,
    )


def count_atomic_predicates(expr: Expression) -> int:
    """Count leaf predicates in a boolean expression tree."""
    if isinstance(expr, Conjunction):
        return sum(count_atomic_predicates(term) for term in expr.terms)
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return count_atomic_predicates(expr.operand)
    if isinstance(expr, (LikeOp, BetweenOp, InOp, IsNullOp, ExistsOp)):
        return 1
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISON_OPS:
        return 1
    # A bare boolean column or anything else counts as one predicate.
    return 1


def _all_cores(node: QueryNode) -> List[SelectQuery]:
    cores = list(node.iter_selects())
    for sub in iter_subqueries(node):
        # iter_subqueries already recurses; collect each core once.
        for core in sub.iter_selects():
            if core not in cores:
                cores.append(core)
    return cores


def _first_core(node: QueryNode) -> SelectQuery:
    current = node
    while isinstance(current, SetOperation):
        current = current.left
    return current


def _count_aggregations(cores: Iterable[SelectQuery]) -> int:
    total = 0
    for core in cores:
        for item in core.projections:
            total += sum(1 for n in item.expr.walk() if is_aggregate_call(n))
        if core.having is not None:
            total += sum(1 for n in core.having.walk() if is_aggregate_call(n))
        for order_item in core.order_by:
            total += sum(1 for n in order_item.expr.walk() if is_aggregate_call(n))
    return total


def _count_set_operations(node: QueryNode) -> int:
    if isinstance(node, SetOperation):
        return 1 + _count_set_operations(node.left) + _count_set_operations(node.right)
    total = 0
    for sub in iter_subqueries(node):
        if isinstance(sub, SetOperation):
            total += 1
    return total


def mean_characteristics(
    queries: Iterable[Union[str, QueryNode]]
) -> dict:
    """Mean of every characteristic over a set of queries (Table 3 rows)."""
    collected = [analyze_query(query) for query in queries]
    if not collected:
        return {f.name: 0.0 for f in fields(QueryCharacteristics)}
    return {
        f.name: sum(getattr(c, f.name) for c in collected) / len(collected)
        for f in fields(QueryCharacteristics)
    }
