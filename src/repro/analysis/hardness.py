"""Spider hardness classifier.

Re-implements the rule-based difficulty levels of the Spider benchmark
(Yu et al., EMNLP 2018) on the engine AST.  The original evaluation
script counts three component groups and buckets queries into
easy / medium / hard / extra hard; the paper uses these levels both to
*sample* its 400-pair subsets (uniform over hardness) and to report
Figure 7 (accuracy per hardness level).

The component counting follows the official ``evaluation.py`` of Spider:

* **component1** — WHERE present, GROUP BY, ORDER BY, LIMIT, JOINs and
  OR-connectives (LIKE is intentionally not counted — see the note in
  ``_count_component1``);
* **component2** — nesting: set operations and subqueries;
* **others** — aggregate count > 1, select items > 1, WHERE predicates
  > 1, GROUP BY columns > 1.
"""

from __future__ import annotations

import enum
from typing import Union

from repro.sqlengine import (
    Conjunction,
    Expression,
    QueryNode,
    SelectQuery,
    SetOperation,
    is_aggregate_call,
    iter_subqueries,
    parse_sql,
)

from .characteristics import count_atomic_predicates


class Hardness(enum.Enum):
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA = "extra"

    @property
    def numeric(self) -> int:
        """The 1–4 mapping the paper uses for 'mean hardness' (Table 3)."""
        return _NUMERIC[self]


_NUMERIC = {
    Hardness.EASY: 1,
    Hardness.MEDIUM: 2,
    Hardness.HARD: 3,
    Hardness.EXTRA: 4,
}

_LEVELS = [Hardness.EASY, Hardness.MEDIUM, Hardness.HARD, Hardness.EXTRA]


def classify_hardness(query: Union[str, QueryNode]) -> Hardness:
    """Classify one query into a Spider hardness level."""
    node = parse_sql(query) if isinstance(query, str) else query
    component1 = _count_component1(node)
    component2 = _count_component2(node)
    others = _count_others(node)
    # Thresholds follow the official Spider buckets, shifted by one on
    # component1 because join *presence* adds an extra count here (the
    # paper's "easy" level excludes all joins, see _count_component1).
    if component1 <= 1 and others == 0 and component2 == 0:
        return Hardness.EASY
    if (others <= 2 and component1 <= 2 and component2 == 0) or (
        component1 <= 3 and others < 2 and component2 == 0
    ):
        return Hardness.MEDIUM
    if (
        (others > 2 and component1 <= 4 and component2 == 0)
        or (3 < component1 <= 5 and others <= 2 and component2 == 0)
        or (component1 <= 1 and others == 0 and component2 <= 1)
    ):
        return Hardness.HARD
    return Hardness.EXTRA


def hardness_score(query: Union[str, QueryNode]) -> int:
    """Numeric hardness (easy=1 … extra=4)."""
    return classify_hardness(query).numeric


def hardness_from_numeric(value: int) -> Hardness:
    return _LEVELS[max(1, min(4, value)) - 1]


# -- component counting -------------------------------------------------------


def _first_core(node: QueryNode) -> SelectQuery:
    while isinstance(node, SetOperation):
        node = node.left
    return node


def _count_component1(node: QueryNode) -> int:
    core = _first_core(node)
    count = 0
    if core.where is not None:
        count += 1
    if core.group_by:
        count += 1
    if core.order_by:
        count += 1
    if core.limit is not None:
        count += 1
    # Joins contribute their count plus one for mere presence: the paper
    # defines "easy" as *no joins at all*, so a single-join query must
    # already exceed the easy threshold (component1 <= 1).
    if core.joins:
        count += 1 + len(core.joins)
    if core.where is not None:
        count += _count_or(core.where)
        # NOTE: unlike Spider's official script we do NOT count LIKE
        # predicates here.  FootballDB gold queries use ILIKE for *every*
        # entity filter (the deployment's house style), so counting them
        # would escalate nearly all queries — in Spider, LIKE marks rare
        # fuzzy-match queries instead.
    return count


def _count_component2(node: QueryNode) -> int:
    count = 0
    if isinstance(node, SetOperation):
        count += 1
        count += _count_component2(node.left)
        count += _count_component2(node.right)
        return count
    count += sum(1 for _ in iter_subqueries(node))
    return count


def _count_others(node: QueryNode) -> int:
    core = _first_core(node)
    count = 0
    aggregations = 0
    for item in core.projections:
        aggregations += sum(1 for n in item.expr.walk() if is_aggregate_call(n))
    if core.having is not None:
        aggregations += sum(1 for n in core.having.walk() if is_aggregate_call(n))
    if aggregations > 1:
        count += 1
    if len(core.projections) > 1:
        count += 1
    if core.where is not None and count_atomic_predicates(core.where) > 1:
        count += 1
    if len(core.group_by) > 1:
        count += 1
    return count


def _count_or(expr: Expression) -> int:
    total = 0
    for n in expr.walk():
        if isinstance(n, Conjunction) and n.op == "OR":
            total += len(n.terms) - 1
    return total

